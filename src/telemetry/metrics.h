// Lock-free telemetry primitives for the fleet service: monotonic
// counters, gauges, and fixed-bucket histograms behind a named registry,
// rendered by exposition.h as Prometheus text.
//
// Design constraints, in order:
//   1. Hot-path writes are a relaxed fetch_add — no mutex, no allocation,
//      no branch beyond the bucket search. Registration (cold) takes a
//      mutex and returns a stable reference that never moves or dies
//      before the registry does, so workers capture raw pointers once.
//   2. Determinism. Histogram bounds are fixed integers chosen at
//      registration, counts and sums are exact uint64 arithmetic, so
//      snapshots taken from N worker shards merge by element-wise
//      addition into a result bit-identical to a single-shard run —
//      the same merge contract the campaign partial reports follow.
//   3. One source of truth. The engine does not maintain parallel
//      counters: FleetEngine::publish_metrics folds the same per-stream
//      snapshots that STATUS and the fleet table read into the registry
//      at scrape time, so the exposition can never disagree with them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace canids::telemetry {

/// Monotonic counter. Writers use add(); scrape-time folds (where the
/// authoritative total is recomputed from per-stream state) use fold(),
/// which only ever moves the value up — the Prometheus monotonicity
/// contract holds either way.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Raise the counter to `v` if it is currently below it (CAS max).
  void fold(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value; may go up or down.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a histogram: per-bucket (non-cumulative) counts
/// plus the exact sum. All-integer, so merge() is commutative and
/// associative — merging shard snapshots in any order yields the same
/// bytes as observing everything in one histogram.
struct HistogramSnapshot {
  /// Inclusive upper bounds, strictly increasing; an implicit +Inf
  /// overflow bucket follows the last bound.
  std::vector<std::uint64_t> bounds;
  /// bounds.size() + 1 entries; counts[i] is the number of observations
  /// with value <= bounds[i] (and > bounds[i-1]); the last entry is the
  /// overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t sum = 0;

  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Bucket index a value falls into (last index = overflow).
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const noexcept;
  /// Element-wise accumulate `other`. Throws std::invalid_argument when
  /// the bucket bounds differ — merging histograms from different ladders
  /// is a bug, not a degradation.
  void merge(const HistogramSnapshot& other);
  /// Estimate the q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket holding the target rank; the overflow bucket reports its
  /// lower bound (the largest finite bound). 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-bucket histogram over non-negative integer values (by convention
/// nanoseconds for latencies). observe() is two relaxed fetch_adds plus a
/// binary search over the bounds.
class Histogram {
 public:
  /// `bounds` are the inclusive bucket upper bounds, non-empty and
  /// strictly increasing (throws std::invalid_argument otherwise); an
  /// overflow bucket is always appended.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const noexcept;
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Copy out the live counts. Individual loads are relaxed, so a
  /// snapshot taken while writers run is a consistent-enough monitoring
  /// view, not a linearizable cut; quiescent snapshots are exact.
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> sum_{0};
};

/// The latency ladder shared by every *_ns histogram: ~4 buckets per
/// decade from 1 µs to 1 s. Fixed here so shard snapshots and the
/// bench_serve sample histogram all merge/compare against one ladder.
[[nodiscard]] std::vector<std::uint64_t> latency_bounds_ns();

/// Power-of-two ladder {1, 2, 4, ..., 2^(count-1)} for size-ish values
/// (queue occupancy, batch sizes).
[[nodiscard]] std::vector<std::uint64_t> pow2_bounds(int count);

/// Label set of one series, sorted by key (the registry sorts on entry,
/// so call-site order never matters).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Named metrics, grouped into families (one name + help + kind, many
/// label-distinguished series). Lookup/registration is mutexed and
/// idempotent: the same (name, labels) always returns the same
/// instrument, whose address is stable for the registry's lifetime.
/// Mismatched re-registration (kind, or histogram bounds) throws
/// std::invalid_argument, as do names/labels outside the Prometheus
/// charset and use of the reserved "le" label.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<std::uint64_t> bounds, Labels labels = {});

  struct Series {
    Labels labels;
    std::uint64_t counter_value = 0;  ///< kCounter
    std::int64_t gauge_value = 0;     ///< kGauge
    HistogramSnapshot histogram;      ///< kHistogram
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    /// Sorted by labels — deterministic regardless of registration order.
    std::vector<Series> series;
  };
  /// Families sorted by name, series sorted by labels: the stable order
  /// the exposition golden tests rely on.
  [[nodiscard]] std::vector<Family> snapshot() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct FamilyEntry {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::map<Labels, Instrument> series;
  };

  Instrument& series(std::string_view name, std::string_view help,
                     MetricKind kind, Labels labels);

  mutable std::mutex mutex_;
  std::map<std::string, FamilyEntry, std::less<>> families_;
};

}  // namespace canids::telemetry
