// The reproduction harness: trains the golden template the way the paper
// does (35 windows over diverse driving behaviours), runs attack trials on
// the simulated bus, and scores detection rate, inference accuracy, and
// injection rate. Every bench binary (Fig. 2/3, Table I, ablations) is a
// thin wrapper over this runner.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/registry.h"
#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "metrics/confusion.h"
#include "trace/synthetic_vehicle.h"

namespace canids::metrics {

struct ExperimentConfig {
  trace::VehicleConfig vehicle;
  ids::PipelineConfig pipeline;
  /// Training windows for the golden template (paper: 35, five per
  /// driving behaviour).
  std::size_t training_windows = ids::kPaperTrainingWindows;
  /// Attack trial timing: the attacker starts after a clean lead-in and
  /// runs until the end of the trial.
  util::TimeNs clean_lead_in = 3 * util::kSecond;
  util::TimeNs attack_duration = 20 * util::kSecond;
  /// Master seed; all per-trial randomness derives from it.
  std::uint64_t seed = 0x5EC0DE;

  /// Baseline-detector knobs for the §V.E comparison trials
  /// (run_trial_with). The models are trained lazily on clean traffic.
  baselines::MuterConfig muter;
  baselines::IntervalConfig interval;
  /// Clean traffic recorded per driving behaviour when training a
  /// baseline model.
  util::TimeNs baseline_training_per_behavior = 6 * util::kSecond;
  /// Bus time of one comparison trial (the CMP benches use 12 s drives).
  util::TimeNs comparison_duration = 12 * util::kSecond;
};

/// Outcome of one attack trial.
struct TrialResult {
  attacks::ScenarioKind kind{};
  double frequency_hz = 0.0;
  std::vector<std::uint32_t> planned_ids;

  FrameDetection frames;          ///< D_r accounting
  WindowConfusion windows;        ///< window-level confusion incl. FPs
  double detection_rate = 0.0;    ///< frames.detection_rate()
  /// Mean hit fraction of ID inference over alerted attack windows
  /// (nullopt when the scenario is not inferable or nothing alerted).
  std::optional<double> inference_accuracy;
  /// Raw inference-event accounting backing inference_accuracy, used by
  /// ScenarioSummary to weight by detection events as the paper does.
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;

  double injection_rate_arbitration = 0.0;  ///< wins / arbitration attempts
  double injection_rate_success = 0.0;      ///< transmitted / generated
  std::uint64_t injected_transmitted = 0;
  double bus_load = 0.0;
};

/// Outcome of one head-to-head comparison trial (§V.E): any registered
/// detector backend over one attacked 12 s city drive. The same
/// (vehicle_seed, attack_seed) pair replays the identical bus run, so two
/// backends' ComparisonTrials are directly comparable — the methodology the
/// CMP benches previously hand-rolled per baseline.
struct ComparisonTrial {
  std::string backend;
  attacks::ScenarioKind kind{};
  double frequency_hz = 0.0;
  std::vector<std::uint32_t> planned_ids;

  std::uint64_t windows = 0;    ///< closed windows (counters.windows_closed)
  std::uint64_t evaluated = 0;  ///< judged windows
  std::uint64_t alerts = 0;     ///< alerting windows
  /// Best inference hit fraction over alerting windows (0 for backends
  /// without malicious-ID inference).
  double best_inference_hit = 0.0;
  /// Live monitoring-state footprint after the run (the storage argument).
  std::size_t state_bytes = 0;
  ids::PipelineCounters counters;
};

/// Aggregate of several trials of the same scenario.
struct ScenarioSummary {
  attacks::ScenarioKind kind{};
  std::size_t trials = 0;
  double detection_rate = 0.0;       ///< frame-weighted across trials
  std::optional<double> inference_accuracy;  ///< mean over trials with data
  double false_positive_rate = 0.0;  ///< window-level, across trials
  double mean_injection_rate = 0.0;  ///< arbitration view, mean over trials
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config = {});

  [[nodiscard]] const trace::SyntheticVehicle& vehicle() const noexcept {
    return vehicle_;
  }
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Build (and cache) the golden template from `training_windows` clean
  /// windows spread evenly over all driving behaviours.
  [[nodiscard]] const ids::GoldenTemplate& train();

  /// Same template as a shareable immutable handle; every trial pipeline
  /// (and any fleet engine built on this runner) references it copy-free.
  [[nodiscard]] std::shared_ptr<const ids::GoldenTemplate> train_shared();

  /// The individual training windows (for Fig. 2 and the stability bench).
  [[nodiscard]] const std::vector<ids::WindowSnapshot>& training_snapshots();

  /// Run one attack trial. `trial_seed` individualises the run; the
  /// driving behaviour is rotated from it.
  [[nodiscard]] TrialResult run_trial(attacks::ScenarioKind kind,
                                      double frequency_hz,
                                      std::uint64_t trial_seed);

  /// Convenience used by the Fig. 3 sweep: a single-ID injection trial
  /// with a caller-chosen identifier.
  [[nodiscard]] TrialResult run_single_id_trial(std::uint32_t id,
                                                double frequency_hz,
                                                std::uint64_t trial_seed);

  /// Run `trials_per_frequency` trials at each frequency and aggregate.
  [[nodiscard]] ScenarioSummary run_scenario(
      attacks::ScenarioKind kind, const std::vector<double>& frequencies,
      int trials_per_frequency);

  // ---- unified detector-backend trials (§V.E comparisons) -----------------

  /// Whole-distribution entropy baseline trained on clean traffic from
  /// every driving behaviour (lazily built, then shared).
  [[nodiscard]] std::shared_ptr<const baselines::MuterEntropyIds>
  muter_model();

  /// Interval baseline with frozen learned periods (lazily built, shared).
  [[nodiscard]] std::shared_ptr<const baselines::IntervalIds>
  interval_model();

  /// DetectorOptions wired with this runner's golden template, the
  /// vehicle's id pool, the pipeline config, and both pretrained baseline
  /// models — make_detector(name, backend_options()) yields a ready
  /// backend for any registered name.
  [[nodiscard]] analysis::DetectorOptions backend_options();

  /// Construct a registered backend from backend_options().
  [[nodiscard]] std::unique_ptr<analysis::DetectorBackend> make_backend(
      std::string_view name);

  /// One comparison trial: `backend` over a city drive with the given
  /// attack scenario injected for the whole run. `attack_seed` defaults to
  /// `vehicle_seed`; passing the same pair to two backends replays the
  /// identical traffic.
  [[nodiscard]] ComparisonTrial run_trial_with(
      std::string_view backend, attacks::ScenarioKind kind,
      double frequency_hz, std::uint64_t vehicle_seed,
      std::optional<std::uint64_t> attack_seed = std::nullopt);

  /// Comparison trial with a caller-chosen injected identifier (the
  /// unseen-ID blind-spot experiment).
  [[nodiscard]] ComparisonTrial run_single_id_trial_with(
      std::string_view backend, std::uint32_t id, double frequency_hz,
      std::uint64_t vehicle_seed,
      std::optional<std::uint64_t> attack_seed = std::nullopt);

 private:
  [[nodiscard]] TrialResult run_built_attack(attacks::BuiltAttack attack,
                                             double frequency_hz,
                                             std::uint64_t trial_seed);

  [[nodiscard]] ComparisonTrial run_comparison(std::string_view backend,
                                               attacks::BuiltAttack attack,
                                               double frequency_hz,
                                               std::uint64_t vehicle_seed);

  ExperimentConfig config_;
  trace::SyntheticVehicle vehicle_;
  std::shared_ptr<const ids::GoldenTemplate> golden_;
  std::vector<ids::WindowSnapshot> training_snapshots_;
  std::shared_ptr<const baselines::MuterEntropyIds> muter_model_;
  std::shared_ptr<const baselines::IntervalIds> interval_model_;
};

}  // namespace canids::metrics
