// The reproduction harness: trains the golden template the way the paper
// does (35 windows over diverse driving behaviours), runs attack trials on
// the simulated bus, and scores detection rate, inference accuracy, and
// injection rate. Every bench binary (Fig. 2/3, Table I, ablations) is a
// thin wrapper over this runner.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "metrics/confusion.h"
#include "trace/synthetic_vehicle.h"

namespace canids::metrics {

struct ExperimentConfig {
  trace::VehicleConfig vehicle;
  ids::PipelineConfig pipeline;
  /// Training windows for the golden template (paper: 35, five per
  /// driving behaviour).
  std::size_t training_windows = ids::kPaperTrainingWindows;
  /// Attack trial timing: the attacker starts after a clean lead-in and
  /// runs until the end of the trial.
  util::TimeNs clean_lead_in = 3 * util::kSecond;
  util::TimeNs attack_duration = 20 * util::kSecond;
  /// Master seed; all per-trial randomness derives from it.
  std::uint64_t seed = 0x5EC0DE;
};

/// Outcome of one attack trial.
struct TrialResult {
  attacks::ScenarioKind kind{};
  double frequency_hz = 0.0;
  std::vector<std::uint32_t> planned_ids;

  FrameDetection frames;          ///< D_r accounting
  WindowConfusion windows;        ///< window-level confusion incl. FPs
  double detection_rate = 0.0;    ///< frames.detection_rate()
  /// Mean hit fraction of ID inference over alerted attack windows
  /// (nullopt when the scenario is not inferable or nothing alerted).
  std::optional<double> inference_accuracy;
  /// Raw inference-event accounting backing inference_accuracy, used by
  /// ScenarioSummary to weight by detection events as the paper does.
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;

  double injection_rate_arbitration = 0.0;  ///< wins / arbitration attempts
  double injection_rate_success = 0.0;      ///< transmitted / generated
  std::uint64_t injected_transmitted = 0;
  double bus_load = 0.0;
};

/// Aggregate of several trials of the same scenario.
struct ScenarioSummary {
  attacks::ScenarioKind kind{};
  std::size_t trials = 0;
  double detection_rate = 0.0;       ///< frame-weighted across trials
  std::optional<double> inference_accuracy;  ///< mean over trials with data
  double false_positive_rate = 0.0;  ///< window-level, across trials
  double mean_injection_rate = 0.0;  ///< arbitration view, mean over trials
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config = {});

  [[nodiscard]] const trace::SyntheticVehicle& vehicle() const noexcept {
    return vehicle_;
  }
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Build (and cache) the golden template from `training_windows` clean
  /// windows spread evenly over all driving behaviours.
  [[nodiscard]] const ids::GoldenTemplate& train();

  /// Same template as a shareable immutable handle; every trial pipeline
  /// (and any fleet engine built on this runner) references it copy-free.
  [[nodiscard]] std::shared_ptr<const ids::GoldenTemplate> train_shared();

  /// The individual training windows (for Fig. 2 and the stability bench).
  [[nodiscard]] const std::vector<ids::WindowSnapshot>& training_snapshots();

  /// Run one attack trial. `trial_seed` individualises the run; the
  /// driving behaviour is rotated from it.
  [[nodiscard]] TrialResult run_trial(attacks::ScenarioKind kind,
                                      double frequency_hz,
                                      std::uint64_t trial_seed);

  /// Convenience used by the Fig. 3 sweep: a single-ID injection trial
  /// with a caller-chosen identifier.
  [[nodiscard]] TrialResult run_single_id_trial(std::uint32_t id,
                                                double frequency_hz,
                                                std::uint64_t trial_seed);

  /// Run `trials_per_frequency` trials at each frequency and aggregate.
  [[nodiscard]] ScenarioSummary run_scenario(
      attacks::ScenarioKind kind, const std::vector<double>& frequencies,
      int trials_per_frequency);

 private:
  [[nodiscard]] TrialResult run_built_attack(attacks::BuiltAttack attack,
                                             double frequency_hz,
                                             std::uint64_t trial_seed);

  ExperimentConfig config_;
  trace::SyntheticVehicle vehicle_;
  std::shared_ptr<const ids::GoldenTemplate> golden_;
  std::vector<ids::WindowSnapshot> training_snapshots_;
};

}  // namespace canids::metrics
