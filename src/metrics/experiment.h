// The reproduction harness: trains the golden template the way the paper
// does (35 windows over diverse driving behaviours), runs attack trials on
// the simulated bus, and scores detection rate, inference accuracy, and
// injection rate. Every bench binary (Fig. 2/3, Table I, ablations) is a
// thin wrapper over this runner.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/registry.h"
#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "metrics/confusion.h"
#include "model/store.h"
#include "trace/capture_labels.h"
#include "trace/synthetic_vehicle.h"
#include "trace/trace_source.h"

namespace canids::metrics {

struct ExperimentConfig {
  trace::VehicleConfig vehicle;
  ids::PipelineConfig pipeline;
  /// Training windows for the golden template (paper: 35, five per
  /// driving behaviour).
  std::size_t training_windows = ids::kPaperTrainingWindows;
  /// Attack trial timing: the attacker starts after a clean lead-in and
  /// runs until the end of the trial.
  util::TimeNs clean_lead_in = 3 * util::kSecond;
  util::TimeNs attack_duration = 20 * util::kSecond;
  /// Master seed; all per-trial randomness derives from it.
  std::uint64_t seed = 0x5EC0DE;

  /// Baseline-detector knobs for the §V.E comparison trials
  /// (run_trial_with). The models are trained lazily on clean traffic.
  baselines::MuterConfig muter;
  baselines::IntervalConfig interval;
  /// Clean traffic recorded per driving behaviour when training a
  /// baseline model.
  util::TimeNs baseline_training_per_behavior = 6 * util::kSecond;
  /// Bus time of one comparison trial (the CMP benches use 12 s drives).
  util::TimeNs comparison_duration = 12 * util::kSecond;
};

/// Outcome of one attack trial.
struct TrialResult {
  attacks::ScenarioKind kind{};
  double frequency_hz = 0.0;
  std::vector<std::uint32_t> planned_ids;

  FrameDetection frames;          ///< D_r accounting
  WindowConfusion windows;        ///< window-level confusion incl. FPs
  double detection_rate = 0.0;    ///< frames.detection_rate()
  /// Mean hit fraction of ID inference over alerted attack windows
  /// (nullopt when the scenario is not inferable or nothing alerted).
  std::optional<double> inference_accuracy;
  /// Raw inference-event accounting backing inference_accuracy, used by
  /// ScenarioSummary to weight by detection events as the paper does.
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;

  double injection_rate_arbitration = 0.0;  ///< wins / arbitration attempts
  double injection_rate_success = 0.0;      ///< transmitted / generated
  std::uint64_t injected_transmitted = 0;
  double bus_load = 0.0;
};

/// Outcome of one head-to-head comparison trial (§V.E): any registered
/// detector backend over one attacked 12 s city drive. The same
/// (vehicle_seed, attack_seed) pair replays the identical bus run, so two
/// backends' ComparisonTrials are directly comparable — the methodology the
/// CMP benches previously hand-rolled per baseline.
struct ComparisonTrial {
  std::string backend;
  attacks::ScenarioKind kind{};
  double frequency_hz = 0.0;
  std::vector<std::uint32_t> planned_ids;

  std::uint64_t windows = 0;    ///< closed windows (counters.windows_closed)
  std::uint64_t evaluated = 0;  ///< judged windows
  std::uint64_t alerts = 0;     ///< alerting windows
  /// Best inference hit fraction over alerting windows (0 for backends
  /// without malicious-ID inference).
  double best_inference_hit = 0.0;
  /// Live monitoring-state footprint after the run (the storage argument).
  std::size_t state_bytes = 0;
  ids::PipelineCounters counters;
};

/// One closed window as an instrumented trial observed it — enough to
/// re-score the run at any detector sensitivity after the fact (the ROC
/// sweep) and to measure detection latency at window granularity.
struct WindowObservation {
  util::TimeNs start = 0;
  util::TimeNs end = 0;
  std::uint64_t frames = 0;
  std::uint64_t injected = 0;  ///< attack frames that landed in the window
  bool evaluated = false;
  bool alert = false;          ///< at the backend's native threshold
  double metric = 0.0;
  double threshold = 0.0;

  /// Threshold-free anomaly score: the backend's decision variable
  /// normalized by its own threshold. Judging `score() >= scale` over a
  /// scale sweep reproduces the full ROC curve, and scale 1 reproduces the
  /// native verdicts — exactly for the integer-threshold backends
  /// (interval, ensemble), which alert at metric >= threshold, and up to
  /// exact floating-point threshold equality for the entropy backends,
  /// which alert at metric > threshold.
  [[nodiscard]] double score() const noexcept {
    if (threshold > 0.0) return metric / threshold;
    return metric > 0.0 ? 1e9 : 0.0;
  }

  friend bool operator==(const WindowObservation&,
                         const WindowObservation&) = default;
};

/// Outcome of one fully-instrumented campaign trial: any registered backend
/// over an attacked drive, with the paper-methodology aggregates (frame
/// detection rate, window confusion, inference accuracy, injection rate)
/// PLUS the per-window observation log that ROC and latency metrics need.
struct InstrumentedTrial {
  std::string backend;
  attacks::ScenarioKind kind{};
  /// Set when the trial injected one caller-chosen identifier (ID sweep).
  std::optional<std::uint32_t> single_id;
  /// Set when the trial replayed a recorded capture instead of driving the
  /// synthetic vehicle (capture-replay campaigns); the capture file name.
  std::string capture;
  double frequency_hz = 0.0;
  std::uint64_t trial_seed = 0;
  std::vector<std::uint32_t> planned_ids;
  util::TimeNs attack_start = 0;
  util::TimeNs attack_end = 0;
  /// Labeled attack intervals for capture trials (possibly several per
  /// recording, possibly none for a clean capture). Empty for synthetic
  /// trials, whose single interval is [attack_start, attack_end).
  std::vector<trace::LabelInterval> attack_intervals;

  FrameDetection frames;
  WindowConfusion windows;
  double detection_rate = 0.0;
  std::optional<double> inference_accuracy;
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;
  double injection_rate_arbitration = 0.0;
  double injection_rate_success = 0.0;
  std::uint64_t injected_transmitted = 0;
  double bus_load = 0.0;

  std::vector<WindowObservation> observations;  ///< bus order
  ids::PipelineCounters counters;

  /// Window-granularity detection latency: end of the first alerting window
  /// closing after the attack begins, minus the attack start. nullopt when
  /// the attack was never flagged (false positives before the attack do
  /// not count).
  [[nodiscard]] std::optional<util::TimeNs> detection_latency() const noexcept;
};

/// Aggregate of several trials of the same scenario.
struct ScenarioSummary {
  attacks::ScenarioKind kind{};
  std::size_t trials = 0;
  double detection_rate = 0.0;       ///< frame-weighted across trials
  std::optional<double> inference_accuracy;  ///< mean over trials with data
  double false_positive_rate = 0.0;  ///< window-level, across trials
  double mean_injection_rate = 0.0;  ///< arbitration view, mean over trials
};

/// Everything an ExperimentRunner trains lazily, bundled as immutable
/// shared handles. A campaign trains ONE runner and hands the bundle to
/// every worker runner, so an N-trial sweep pays one training pass instead
/// of one per worker (or, before this existed, one per trial call site).
struct SharedModels {
  std::shared_ptr<const ids::GoldenTemplate> golden;
  std::vector<ids::WindowSnapshot> training_snapshots;
  std::shared_ptr<const baselines::MuterEntropyIds> muter;
  std::shared_ptr<const baselines::IntervalIds> interval;

  /// The persistable slice of this set (training_snapshots are measurement
  /// by-products, not a model) — the ONE conversion between the harness's
  /// shared handles and the model store's.
  [[nodiscard]] model::StoredModels stored() const;
  [[nodiscard]] static SharedModels from_stored(
      const model::StoredModels& stored);

  /// Pack every trained model into a versioned ModelBundle. Throws
  /// std::invalid_argument when nothing is trained.
  [[nodiscard]] model::ModelBundle to_bundle() const;

  /// Cold-start bundle load: every section becomes the corresponding
  /// shared handle. A partial bundle yields a partial SharedModels —
  /// absent pieces stay lazily trainable wherever the bundle is adopted.
  [[nodiscard]] static SharedModels from_bundle(
      const model::ModelBundle& bundle);

  /// As from_bundle, over model::load_models_file (bundle or legacy bare
  /// golden-template file).
  [[nodiscard]] static SharedModels from_file(
      const std::filesystem::path& path);
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config = {});

  [[nodiscard]] const trace::SyntheticVehicle& vehicle() const noexcept {
    return vehicle_;
  }
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Build (and cache) the golden template from `training_windows` clean
  /// windows spread evenly over all driving behaviours.
  [[nodiscard]] const ids::GoldenTemplate& train();

  /// Same template as a shareable immutable handle; every trial pipeline
  /// (and any fleet engine built on this runner) references it copy-free.
  [[nodiscard]] std::shared_ptr<const ids::GoldenTemplate> train_shared();

  /// The individual training windows (for Fig. 2 and the stability bench).
  [[nodiscard]] const std::vector<ids::WindowSnapshot>& training_snapshots();

  /// Train everything this runner can train (golden template + both
  /// baseline models) exactly once and return the bundle as shareable
  /// immutable handles.
  [[nodiscard]] SharedModels trained_models();

  /// Adopt pretrained models — typically another runner's trained_models()
  /// — so this runner never pays its own training pass. Partial bundles
  /// are fine: absent entries remain lazily trainable. Must be called
  /// before anything triggered training on this runner.
  void adopt_models(const SharedModels& models);

  /// Training passes this runner actually performed: one per model built
  /// from scratch (golden template, Müter band, interval periods). Adopted
  /// models never count — so a bundle cold-start that covers every model a
  /// campaign needs reports 0 here, the verifiable "no training happened"
  /// guarantee.
  [[nodiscard]] std::uint64_t training_passes() const noexcept {
    return training_passes_;
  }

  /// Run one attack trial. `trial_seed` individualises the run; the
  /// driving behaviour is rotated from it.
  [[nodiscard]] TrialResult run_trial(attacks::ScenarioKind kind,
                                      double frequency_hz,
                                      std::uint64_t trial_seed);

  /// Convenience used by the Fig. 3 sweep: a single-ID injection trial
  /// with a caller-chosen identifier.
  [[nodiscard]] TrialResult run_single_id_trial(std::uint32_t id,
                                                double frequency_hz,
                                                std::uint64_t trial_seed);

  /// Run `trials_per_frequency` trials at each frequency and aggregate.
  [[nodiscard]] ScenarioSummary run_scenario(
      attacks::ScenarioKind kind, const std::vector<double>& frequencies,
      int trials_per_frequency);

  // ---- unified detector-backend trials (§V.E comparisons) -----------------

  /// Whole-distribution entropy baseline trained on clean traffic from
  /// every driving behaviour (lazily built, then shared).
  [[nodiscard]] std::shared_ptr<const baselines::MuterEntropyIds>
  muter_model();

  /// Interval baseline with frozen learned periods (lazily built, shared).
  [[nodiscard]] std::shared_ptr<const baselines::IntervalIds>
  interval_model();

  /// Which lazily-trained baseline models a backend name consumes — the
  /// single gating rule shared by make_backend and by campaign training
  /// (unknown custom names get everything, since their factories may read
  /// any slice).
  struct BackendModelNeeds {
    bool muter = false;
    bool interval = false;
  };
  [[nodiscard]] static BackendModelNeeds backend_model_needs(
      std::string_view name) noexcept;

  /// DetectorOptions wired with this runner's golden template, the
  /// vehicle's id pool, the pipeline config, and both pretrained baseline
  /// models — make_detector(name, backend_options()) yields a ready
  /// backend for any registered name.
  [[nodiscard]] analysis::DetectorOptions backend_options();

  /// Construct a registered backend from backend_options().
  [[nodiscard]] std::unique_ptr<analysis::DetectorBackend> make_backend(
      std::string_view name);

  /// One comparison trial: `backend` over a city drive with the given
  /// attack scenario injected for the whole run. `attack_seed` defaults to
  /// `vehicle_seed`; passing the same pair to two backends replays the
  /// identical traffic.
  [[nodiscard]] ComparisonTrial run_trial_with(
      std::string_view backend, attacks::ScenarioKind kind,
      double frequency_hz, std::uint64_t vehicle_seed,
      std::optional<std::uint64_t> attack_seed = std::nullopt);

  /// Comparison trial with a caller-chosen injected identifier (the
  /// unseen-ID blind-spot experiment).
  [[nodiscard]] ComparisonTrial run_single_id_trial_with(
      std::string_view backend, std::uint32_t id, double frequency_hz,
      std::uint64_t vehicle_seed,
      std::optional<std::uint64_t> attack_seed = std::nullopt);

  // ---- instrumented campaign trials ---------------------------------------

  /// Run one attack trial through any registered backend with full
  /// per-window instrumentation. Timing, seeding, and scoring mirror
  /// run_trial exactly, so with backend == "bit-entropy" the aggregate
  /// numbers are bit-identical to run_trial's TrialResult.
  [[nodiscard]] InstrumentedTrial run_instrumented_trial(
      std::string_view backend, attacks::ScenarioKind kind,
      double frequency_hz, std::uint64_t trial_seed);

  /// Instrumented single-ID sweep trial (mirrors run_single_id_trial).
  [[nodiscard]] InstrumentedTrial run_instrumented_single_id_trial(
      std::string_view backend, std::uint32_t id, double frequency_hz,
      std::uint64_t trial_seed);

  // ---- capture-replay trials ----------------------------------------------

  /// Replay a recorded capture through any registered backend instead of
  /// driving the synthetic vehicle. Timestamps are normalized to the
  /// capture's first frame, so recordings with absolute epoch times score
  /// correctly against the capture-relative label intervals. Ground truth
  /// comes from `attacks` (the sidecar label intervals; empty = a clean
  /// capture): a window is positive when it overlaps any labeled
  /// interval, and a frame counts as injected when its timestamp falls
  /// inside one (an attribution proxy — recorded traffic has no per-frame
  /// attacker tag). Injection-rate and bus-load fields stay 0; ROC
  /// observations and detection latency work exactly as in synthetic
  /// trials.
  [[nodiscard]] InstrumentedTrial run_capture_trial(
      std::string_view backend, trace::TraceSource& source,
      const std::vector<trace::LabelInterval>& attacks,
      std::string capture_name, std::uint64_t trial_seed);

 private:
  [[nodiscard]] InstrumentedTrial run_instrumented_attack(
      std::string_view backend, attacks::BuiltAttack attack,
      double frequency_hz, std::uint64_t trial_seed);
  [[nodiscard]] TrialResult run_built_attack(attacks::BuiltAttack attack,
                                             double frequency_hz,
                                             std::uint64_t trial_seed);

  [[nodiscard]] ComparisonTrial run_comparison(std::string_view backend,
                                               attacks::BuiltAttack attack,
                                               double frequency_hz,
                                               std::uint64_t vehicle_seed);

  ExperimentConfig config_;
  trace::SyntheticVehicle vehicle_;
  std::shared_ptr<const ids::GoldenTemplate> golden_;
  std::vector<ids::WindowSnapshot> training_snapshots_;
  std::shared_ptr<const baselines::MuterEntropyIds> muter_model_;
  std::shared_ptr<const baselines::IntervalIds> interval_model_;
  std::uint64_t training_passes_ = 0;
};

}  // namespace canids::metrics
