// Window- and frame-level scoring of a detector run: detection rate D_r over
// injected frames, window confusion counts, and false-positive accounting.
#pragma once

#include <cstdint>

namespace canids::metrics {

/// Window-level confusion counts. "Positive" = attack traffic present in
/// the window; "alert" = the detector flagged it.
struct WindowConfusion {
  std::uint64_t true_positive = 0;
  std::uint64_t false_positive = 0;
  std::uint64_t true_negative = 0;
  std::uint64_t false_negative = 0;

  void record(bool attack_present, bool alerted) noexcept {
    if (attack_present) {
      if (alerted) ++true_positive; else ++false_negative;
    } else {
      if (alerted) ++false_positive; else ++true_negative;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return true_positive + false_positive + true_negative + false_negative;
  }
  [[nodiscard]] double true_positive_rate() const noexcept {
    const std::uint64_t p = true_positive + false_negative;
    return p == 0 ? 0.0
                  : static_cast<double>(true_positive) / static_cast<double>(p);
  }
  [[nodiscard]] double false_positive_rate() const noexcept {
    const std::uint64_t n = false_positive + true_negative;
    return n == 0 ? 0.0
                  : static_cast<double>(false_positive) / static_cast<double>(n);
  }
  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t flagged = true_positive + false_positive;
    return flagged == 0 ? 0.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(flagged);
  }

  WindowConfusion& operator+=(const WindowConfusion& other) noexcept {
    true_positive += other.true_positive;
    false_positive += other.false_positive;
    true_negative += other.true_negative;
    false_negative += other.false_negative;
    return *this;
  }
};

/// Frame-level detection accounting: an injected frame counts as detected
/// when the window containing it alerted (the paper's D_r).
struct FrameDetection {
  std::uint64_t injected_frames = 0;
  std::uint64_t detected_frames = 0;

  void record_window(std::uint64_t injected_in_window, bool alerted) noexcept {
    injected_frames += injected_in_window;
    if (alerted) detected_frames += injected_in_window;
  }

  [[nodiscard]] double detection_rate() const noexcept {
    return injected_frames == 0
               ? 0.0
               : static_cast<double>(detected_frames) /
                     static_cast<double>(injected_frames);
  }

  FrameDetection& operator+=(const FrameDetection& other) noexcept {
    injected_frames += other.injected_frames;
    detected_frames += other.detected_frames;
    return *this;
  }
};

}  // namespace canids::metrics
