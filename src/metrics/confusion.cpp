// confusion.h is header-only; this translation unit only anchors the target.
#include "metrics/confusion.h"
