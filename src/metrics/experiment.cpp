#include "metrics/experiment.h"

#include <algorithm>
#include <deque>

#include "trace/trace_io.h"
#include "util/contracts.h"

namespace canids::metrics {

namespace {

/// Deterministic sub-seed derivation.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t salt) noexcept {
  std::uint64_t state = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  return util::splitmix64(state);
}

/// Per-frame attack attribution, drained by timestamp as windows close —
/// the ONE window-assignment rule shared by the synthetic and capture
/// trial paths (only the is-this-frame-injected predicate differs: the
/// attacker-node tag there, the labeled interval here). A frame whose
/// timestamp reaches the window boundary belongs to the next window.
class InjectionAttribution {
 public:
  void on_frame(util::TimeNs timestamp, bool injected) {
    pending_.emplace_back(timestamp, injected);
  }

  /// Injected-frame count of the window ending at `end` (every remaining
  /// frame when `final_window`).
  [[nodiscard]] std::uint64_t drain(util::TimeNs end, bool final_window) {
    std::uint64_t injected = 0;
    while (!pending_.empty() &&
           (final_window || pending_.front().first < end)) {
      if (pending_.front().second) ++injected;
      pending_.pop_front();
    }
    return injected;
  }

 private:
  std::deque<std::pair<util::TimeNs, bool>> pending_;
};

[[nodiscard]] WindowObservation observation_of(
    const analysis::WindowVerdict& verdict, std::uint64_t injected) {
  WindowObservation observation;
  observation.start = verdict.start;
  observation.end = verdict.end;
  observation.frames = verdict.frames;
  observation.injected = injected;
  observation.evaluated = verdict.evaluated;
  observation.alert = verdict.alert;
  observation.metric = verdict.metric;
  observation.threshold = verdict.threshold;
  return observation;
}

}  // namespace

std::optional<util::TimeNs> InstrumentedTrial::detection_latency()
    const noexcept {
  if (!capture.empty()) {
    // Capture trials may label several attack intervals: the latency is
    // measured from the start of the interval the first alerting window
    // actually overlaps (earliest such interval for a window spanning
    // more than one). Alerts in unlabeled gaps are false positives, not
    // detections, and never count; a clean capture has no latency at all.
    for (const WindowObservation& window : observations) {
      if (!window.evaluated || !window.alert) continue;
      for (const trace::LabelInterval& interval : attack_intervals) {
        // Intervals are sorted by start; overlap implies a positive
        // window.end - interval.start.
        if (interval.overlaps(window.start, window.end)) {
          return window.end - interval.start;
        }
      }
    }
    return std::nullopt;
  }
  for (const WindowObservation& window : observations) {
    if (window.evaluated && window.alert && window.end > attack_start) {
      return window.end - attack_start;
    }
  }
  return std::nullopt;
}

model::StoredModels SharedModels::stored() const {
  model::StoredModels out;
  out.golden = golden;
  out.muter = muter;
  out.interval = interval;
  return out;
}

SharedModels SharedModels::from_stored(const model::StoredModels& stored) {
  SharedModels models;
  models.golden = stored.golden;
  models.muter = stored.muter;
  models.interval = stored.interval;
  return models;
}

model::ModelBundle SharedModels::to_bundle() const {
  return model::pack(stored());
}

SharedModels SharedModels::from_bundle(const model::ModelBundle& bundle) {
  return from_stored(model::unpack(bundle));
}

SharedModels SharedModels::from_file(const std::filesystem::path& path) {
  return from_stored(model::load_models_file(path));
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(config), vehicle_(config.vehicle) {
  CANIDS_EXPECTS(config_.training_windows >= 2);
  CANIDS_EXPECTS(config_.attack_duration > 0);
  CANIDS_EXPECTS(config_.pipeline.window.mode ==
                 ids::WindowConfig::Mode::kByTime);
}

const ids::GoldenTemplate& ExperimentRunner::train() {
  return *train_shared();
}

std::shared_ptr<const ids::GoldenTemplate> ExperimentRunner::train_shared() {
  if (golden_) return golden_;
  ++training_passes_;

  const util::TimeNs window = config_.pipeline.window.duration;
  const std::size_t per_behavior =
      (config_.training_windows + trace::kAllBehaviors.size() - 1) /
      trace::kAllBehaviors.size();

  ids::TemplateBuilder builder(can::kStdIdBits);
  std::size_t behavior_index = 0;
  while (builder.window_count() < config_.training_windows) {
    const trace::DrivingBehavior behavior =
        trace::kAllBehaviors[behavior_index % trace::kAllBehaviors.size()];
    const std::uint64_t run_seed =
        derive_seed(config_.seed, 1000 + behavior_index);
    // One extra window of traffic so the trailing partial window can be
    // discarded without starving the builder.
    const util::TimeNs duration =
        static_cast<util::TimeNs>(per_behavior + 1) * window;
    const trace::Trace capture =
        vehicle_.record_trace(behavior, duration, run_seed);

    std::vector<can::TimedFrame> frames;
    frames.reserve(capture.size());
    for (const trace::LogRecord& record : capture) {
      frames.push_back(can::TimedFrame{record.timestamp, record.frame,
                                       can::TimedFrame::kUnknownSource});
    }
    for (const ids::WindowSnapshot& snap :
         ids::windows_of(frames, config_.pipeline.window)) {
      // Keep only complete windows (flush() emits a short trailing one).
      if (snap.end - snap.start != window) continue;
      if (builder.window_count() >= config_.training_windows) break;
      builder.add_window(snap);
      training_snapshots_.push_back(snap);
    }
    ++behavior_index;
  }

  golden_ = std::make_shared<const ids::GoldenTemplate>(builder.build());
  return golden_;
}

const std::vector<ids::WindowSnapshot>& ExperimentRunner::training_snapshots() {
  (void)train();
  return training_snapshots_;
}

SharedModels ExperimentRunner::trained_models() {
  SharedModels models;
  models.golden = train_shared();
  models.training_snapshots = training_snapshots_;
  models.muter = muter_model();
  models.interval = interval_model();
  return models;
}

void ExperimentRunner::adopt_models(const SharedModels& models) {
  if (models.golden) {
    golden_ = models.golden;
    training_snapshots_ = models.training_snapshots;
  }
  if (models.muter) muter_model_ = models.muter;
  if (models.interval) interval_model_ = models.interval;
}

TrialResult ExperimentRunner::run_trial(attacks::ScenarioKind kind,
                                        double frequency_hz,
                                        std::uint64_t trial_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  attack_config.start = config_.clean_lead_in;
  attack_config.stop = config_.clean_lead_in + config_.attack_duration;

  util::Rng rng(derive_seed(config_.seed, 77 + trial_seed));
  attacks::BuiltAttack attack =
      attacks::make_scenario(kind, vehicle_, attack_config, rng);
  return run_built_attack(std::move(attack), frequency_hz, trial_seed);
}

TrialResult ExperimentRunner::run_single_id_trial(std::uint32_t id,
                                                  double frequency_hz,
                                                  std::uint64_t trial_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  attack_config.start = config_.clean_lead_in;
  attack_config.stop = config_.clean_lead_in + config_.attack_duration;

  util::Rng rng(derive_seed(config_.seed, 991 + trial_seed));
  attacks::BuiltAttack attack =
      attacks::make_single_id_attack(attack_config, id, rng);
  return run_built_attack(std::move(attack), frequency_hz, trial_seed);
}

TrialResult ExperimentRunner::run_built_attack(attacks::BuiltAttack attack,
                                               double frequency_hz,
                                               std::uint64_t trial_seed) {
  const InstrumentedTrial trial = run_instrumented_attack(
      "bit-entropy", std::move(attack), frequency_hz, trial_seed);

  TrialResult result;
  result.kind = trial.kind;
  result.frequency_hz = trial.frequency_hz;
  result.planned_ids = trial.planned_ids;
  result.frames = trial.frames;
  result.windows = trial.windows;
  result.detection_rate = trial.detection_rate;
  result.inference_accuracy = trial.inference_accuracy;
  result.inference_hit_sum = trial.inference_hit_sum;
  result.inference_windows = trial.inference_windows;
  result.injection_rate_arbitration = trial.injection_rate_arbitration;
  result.injection_rate_success = trial.injection_rate_success;
  result.injected_transmitted = trial.injected_transmitted;
  result.bus_load = trial.bus_load;
  return result;
}

InstrumentedTrial ExperimentRunner::run_instrumented_attack(
    std::string_view backend_name, attacks::BuiltAttack attack,
    double frequency_hz, std::uint64_t trial_seed) {
  InstrumentedTrial result;
  result.backend = std::string(backend_name);
  result.kind = attack.kind;
  result.frequency_hz = frequency_hz;
  result.trial_seed = trial_seed;
  result.planned_ids = attack.planned_ids;
  result.attack_start = attack.node->attack_config().start;
  result.attack_end = attack.node->attack_config().stop;

  const trace::DrivingBehavior behavior =
      trace::kAllBehaviors[trial_seed % trace::kAllBehaviors.size()];

  can::BusSimulator bus(config_.vehicle.bus);
  vehicle_.attach_to(bus, behavior, derive_seed(config_.seed, 5 + trial_seed));

  // attach_attack (not add_node) so suspend/masquerade attackers resolve
  // their victim ECU on the freshly-attached vehicle.
  const attacks::AttachedAttack attached = attacks::attach_attack(bus, attack);
  attacks::AttackNode* attacker = attached.node;
  const int attacker_index = attached.index;

  const std::unique_ptr<analysis::DetectorBackend> backend =
      make_backend(backend_name);
  const bool supports_inference = backend->describe().supports_inference;

  const util::TimeNs attack_start = result.attack_start;
  const util::TimeNs attack_end = result.attack_end;
  const bool inferable = attacks::scenario_inferable(attack.kind);

  // Per frame in bus order: came from the attacker? Drained by timestamp
  // as windows close, so the attribution works for any backend's frame
  // accounting (including ones that drop frames).
  InjectionAttribution attribution;

  auto handle_verdict = [&](const analysis::WindowVerdict& verdict,
                            bool final_window) {
    const std::uint64_t injected_in_window =
        attribution.drain(verdict.end, final_window);
    result.observations.push_back(observation_of(verdict, injected_in_window));
    if (!verdict.evaluated) return;

    const bool overlaps_attack =
        verdict.start < attack_end && verdict.end > attack_start;
    // Windows straddling the attack boundary carry only a partial injection
    // signature; the paper's inference events are full attack windows.
    const bool inside_attack =
        verdict.start >= attack_start && verdict.end <= attack_end;
    result.frames.record_window(injected_in_window, verdict.alert);
    result.windows.record(overlaps_attack, verdict.alert);

    if (verdict.alert && inside_attack && inferable && supports_inference &&
        verdict.detail && !result.planned_ids.empty()) {
      result.inference_hit_sum += ids::inference_hit_fraction(
          result.planned_ids, verdict.detail->ranked_candidates);
      ++result.inference_windows;
    }
  };

  bus.add_listener([&](const can::TimedFrame& frame) {
    attribution.on_frame(frame.timestamp,
                         frame.source_node == attacker_index);
    if (auto verdict = backend->on_frame(frame.timestamp, frame.frame.id())) {
      handle_verdict(*verdict, /*final_window=*/false);
    }
  });

  bus.run_until(attack_end);
  if (auto verdict = backend->finish()) {
    handle_verdict(*verdict, /*final_window=*/true);
  }

  result.detection_rate = result.frames.detection_rate();
  if (result.inference_windows > 0) {
    result.inference_accuracy =
        result.inference_hit_sum /
        static_cast<double>(result.inference_windows);
  }
  result.injection_rate_arbitration =
      attacker->stats().arbitration_win_ratio();
  result.injection_rate_success = attacker->stats().injection_success_ratio();
  result.injected_transmitted = attacker->stats().transmitted;
  result.bus_load = bus.stats().load();
  result.counters = backend->counters();
  return result;
}

InstrumentedTrial ExperimentRunner::run_instrumented_trial(
    std::string_view backend, attacks::ScenarioKind kind, double frequency_hz,
    std::uint64_t trial_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  attack_config.start = config_.clean_lead_in;
  attack_config.stop = config_.clean_lead_in + config_.attack_duration;

  util::Rng rng(derive_seed(config_.seed, 77 + trial_seed));
  return run_instrumented_attack(
      backend, attacks::make_scenario(kind, vehicle_, attack_config, rng),
      frequency_hz, trial_seed);
}

InstrumentedTrial ExperimentRunner::run_instrumented_single_id_trial(
    std::string_view backend, std::uint32_t id, double frequency_hz,
    std::uint64_t trial_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  attack_config.start = config_.clean_lead_in;
  attack_config.stop = config_.clean_lead_in + config_.attack_duration;

  util::Rng rng(derive_seed(config_.seed, 991 + trial_seed));
  InstrumentedTrial trial = run_instrumented_attack(
      backend, attacks::make_single_id_attack(attack_config, id, rng),
      frequency_hz, trial_seed);
  trial.single_id = id;
  return trial;
}

InstrumentedTrial ExperimentRunner::run_capture_trial(
    std::string_view backend_name, trace::TraceSource& source,
    const std::vector<trace::LabelInterval>& attacks,
    std::string capture_name, std::uint64_t trial_seed) {
  CANIDS_EXPECTS(!capture_name.empty());

  InstrumentedTrial result;
  result.backend = std::string(backend_name);
  result.capture = std::move(capture_name);
  result.trial_seed = trial_seed;
  result.attack_intervals = attacks;
  if (!attacks.empty()) {
    result.attack_start = attacks.front().start;
    result.attack_end = attacks.front().end;
    for (const trace::LabelInterval& interval : attacks) {
      result.attack_end = std::max(result.attack_end, interval.end);
    }
  }

  const std::unique_ptr<analysis::DetectorBackend> backend =
      make_backend(backend_name);

  // Per frame in capture order: did it fall inside a labeled attack
  // interval? The label stands in for the attacker-node tag recorded
  // traffic cannot carry; the window-assignment rule itself is the one the
  // synthetic trials use (InjectionAttribution).
  InjectionAttribution attribution;
  const auto labeled = [&](util::TimeNs timestamp) {
    for (const trace::LabelInterval& interval : attacks) {
      if (interval.contains(timestamp)) return true;
    }
    return false;
  };

  auto handle_verdict = [&](const analysis::WindowVerdict& verdict,
                            bool final_window) {
    const std::uint64_t injected_in_window =
        attribution.drain(verdict.end, final_window);
    result.observations.push_back(observation_of(verdict, injected_in_window));
    if (!verdict.evaluated) return;

    bool overlaps_attack = false;
    for (const trace::LabelInterval& interval : attacks) {
      overlaps_attack =
          overlaps_attack || interval.overlaps(verdict.start, verdict.end);
    }
    result.frames.record_window(injected_in_window, verdict.alert);
    result.windows.record(overlaps_attack, verdict.alert);
  };

  // Timestamps are normalized to the capture's first frame before anything
  // sees them: real candump recordings carry absolute epoch times while
  // the sidecar labels are capture-relative, and window boundaries are
  // anchored to the first frame either way (util::WindowClock), so the
  // shift changes nothing for already-relative recordings beyond making
  // observations/latency read in capture time.
  std::optional<util::TimeNs> origin;
  for (;;) {
    const std::optional<can::TimedFrame> frame = source.next();
    if (!frame) break;
    if (!origin) origin = frame->timestamp;
    const util::TimeNs timestamp = frame->timestamp - *origin;
    attribution.on_frame(timestamp, labeled(timestamp));
    if (auto verdict = backend->on_frame(timestamp, frame->frame.id())) {
      handle_verdict(*verdict, /*final_window=*/false);
    }
  }
  if (auto verdict = backend->finish()) {
    handle_verdict(*verdict, /*final_window=*/true);
  }

  result.detection_rate = result.frames.detection_rate();
  result.counters = backend->counters();
  return result;
}

std::shared_ptr<const baselines::MuterEntropyIds>
ExperimentRunner::muter_model() {
  if (muter_model_) return muter_model_;
  ++training_passes_;
  // One accumulator across every behaviour's clean drive, mirroring the
  // pre-redesign CMP8 calibration (seed salt 100 + behaviour index).
  std::vector<baselines::SymbolWindow> training;
  baselines::SymbolEntropyAccumulator accumulator(
      config_.pipeline.window.duration);
  for (std::uint64_t i = 0; i < trace::kAllBehaviors.size(); ++i) {
    for (const trace::LogRecord& record : vehicle_.record_trace(
             trace::kAllBehaviors[i], config_.baseline_training_per_behavior,
             100 + i)) {
      if (auto window =
              accumulator.add(record.timestamp, record.frame.id().raw())) {
        training.push_back(*window);
      }
    }
  }
  muter_model_ = std::make_shared<const baselines::MuterEntropyIds>(
      training, config_.muter);
  return muter_model_;
}

std::shared_ptr<const baselines::IntervalIds>
ExperimentRunner::interval_model() {
  if (interval_model_) return interval_model_;
  ++training_passes_;
  // Seed salt 200 + behaviour index, mirroring the pre-redesign CMP11
  // calibration.
  baselines::IntervalIds model(config_.interval);
  for (std::uint64_t i = 0; i < trace::kAllBehaviors.size(); ++i) {
    for (const trace::LogRecord& record : vehicle_.record_trace(
             trace::kAllBehaviors[i], config_.baseline_training_per_behavior,
             200 + i)) {
      model.train(record.timestamp, record.frame.id().raw());
    }
  }
  model.finish_training();
  interval_model_ =
      std::make_shared<const baselines::IntervalIds>(std::move(model));
  return interval_model_;
}

analysis::DetectorOptions ExperimentRunner::backend_options() {
  analysis::DetectorOptions options;
  options.pipeline = config_.pipeline;
  options.golden = train_shared();
  options.id_pool = vehicle_.id_pool();
  options.muter = config_.muter;
  options.interval = config_.interval;
  options.muter_model = muter_model();
  options.interval_model = interval_model();
  return options;
}

ExperimentRunner::BackendModelNeeds ExperimentRunner::backend_model_needs(
    std::string_view name) noexcept {
  BackendModelNeeds needs;
  needs.muter = name == "symbol-entropy" || name == "ensemble";
  needs.interval = name == "interval" || name == "ensemble";
  if (name != "bit-entropy" && name != "symbol-entropy" &&
      name != "interval" && name != "ensemble") {
    needs.muter = needs.interval = true;
  }
  return needs;
}

std::unique_ptr<analysis::DetectorBackend> ExperimentRunner::make_backend(
    std::string_view name) {
  // Train only the models the named backend can use.
  analysis::DetectorOptions options;
  options.pipeline = config_.pipeline;
  options.golden = train_shared();
  options.id_pool = vehicle_.id_pool();
  options.muter = config_.muter;
  options.interval = config_.interval;
  const BackendModelNeeds needs = backend_model_needs(name);
  if (needs.muter) options.muter_model = muter_model();
  if (needs.interval) options.interval_model = interval_model();
  return analysis::make_detector(name, options);
}

ComparisonTrial ExperimentRunner::run_comparison(std::string_view backend_name,
                                                 attacks::BuiltAttack attack,
                                                 double frequency_hz,
                                                 std::uint64_t vehicle_seed) {
  ComparisonTrial trial;
  trial.backend = std::string(backend_name);
  trial.kind = attack.kind;
  trial.frequency_hz = frequency_hz;
  trial.planned_ids = attack.planned_ids;

  can::BusSimulator bus(config_.vehicle.bus);
  vehicle_.attach_to(bus, trace::DrivingBehavior::kCity, vehicle_seed);
  attacks::attach_attack(bus, attack);

  const std::unique_ptr<analysis::DetectorBackend> backend =
      make_backend(backend_name);

  auto handle = [&](const analysis::WindowVerdict& verdict) {
    if (verdict.alert && verdict.detail && !trial.planned_ids.empty()) {
      trial.best_inference_hit = std::max(
          trial.best_inference_hit,
          ids::inference_hit_fraction(trial.planned_ids,
                                      verdict.detail->ranked_candidates));
    }
  };
  bus.add_listener([&](const can::TimedFrame& frame) {
    if (auto verdict = backend->on_frame(frame.timestamp, frame.frame.id())) {
      handle(*verdict);
    }
  });
  bus.run_until(config_.comparison_duration);
  if (auto verdict = backend->finish()) handle(*verdict);

  trial.counters = backend->counters();
  trial.windows = trial.counters.windows_closed;
  trial.evaluated = trial.counters.windows_evaluated;
  trial.alerts = trial.counters.alerts;
  trial.state_bytes = backend->describe().state_bytes;
  return trial;
}

ComparisonTrial ExperimentRunner::run_trial_with(
    std::string_view backend, attacks::ScenarioKind kind, double frequency_hz,
    std::uint64_t vehicle_seed, std::optional<std::uint64_t> attack_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  util::Rng rng(attack_seed.value_or(vehicle_seed));
  return run_comparison(
      backend, attacks::make_scenario(kind, vehicle_, attack_config, rng),
      frequency_hz, vehicle_seed);
}

ComparisonTrial ExperimentRunner::run_single_id_trial_with(
    std::string_view backend, std::uint32_t id, double frequency_hz,
    std::uint64_t vehicle_seed, std::optional<std::uint64_t> attack_seed) {
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = frequency_hz;
  util::Rng rng(attack_seed.value_or(vehicle_seed));
  return run_comparison(
      backend, attacks::make_single_id_attack(attack_config, id, rng),
      frequency_hz, vehicle_seed);
}

ScenarioSummary ExperimentRunner::run_scenario(
    attacks::ScenarioKind kind, const std::vector<double>& frequencies,
    int trials_per_frequency) {
  CANIDS_EXPECTS(!frequencies.empty());
  CANIDS_EXPECTS(trials_per_frequency >= 1);

  ScenarioSummary summary;
  summary.kind = kind;

  FrameDetection frames;
  WindowConfusion windows;
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;
  double injection_sum = 0.0;

  std::uint64_t trial_counter = 0;
  for (double frequency : frequencies) {
    for (int t = 0; t < trials_per_frequency; ++t) {
      const TrialResult trial = run_trial(kind, frequency, trial_counter);
      ++trial_counter;
      ++summary.trials;
      frames += trial.frames;
      windows += trial.windows;
      injection_sum += trial.injection_rate_arbitration;
      inference_hit_sum += trial.inference_hit_sum;
      inference_windows += trial.inference_windows;
    }
  }

  summary.detection_rate = frames.detection_rate();
  summary.false_positive_rate = windows.false_positive_rate();
  summary.mean_injection_rate =
      injection_sum / static_cast<double>(summary.trials);
  if (inference_windows > 0) {
    // Per detection event, matching the paper's rank-selection hit rate:
    // every alerted attack window is one inference attempt.
    summary.inference_accuracy =
        inference_hit_sum / static_cast<double>(inference_windows);
  }
  return summary;
}

}  // namespace canids::metrics
