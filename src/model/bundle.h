// The versioned model-artifact container. The paper's deployment story
// (§IV: train off-vehicle, carry the golden template onto the ECU) needs a
// durable on-disk form for *every* trained model — the golden template, the
// Müter entropy band, the Song interval periods — so a `ModelBundle` holds
// named sections behind one magic + format version:
//
//   offset  bytes  field
//   ------  -----  -----------------------------------------------
//   0       8      magic "canidsMB"
//   8       4      format version (u32 little-endian, currently 1)
//   12      4      section count (u32 little-endian)
//   then, per section:
//           4      name length (u32 LE)     } strict: empty or
//           n      name bytes               } duplicate names reject
//           8      payload length (u64 LE)
//           m      payload bytes
//
// load() is strict: bad magic, an unsupported version, a truncated stream,
// or trailing bytes after the last section all throw — a half-written or
// foreign file must never cold-start a detector silently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace canids::model {

/// First 8 bytes of every bundle file (no NUL terminator on disk).
inline constexpr std::string_view kBundleMagic = "canidsMB";

/// Current on-disk format version; load() rejects anything else.
inline constexpr std::uint32_t kBundleFormatVersion = 1;

/// Hard cap on one section's payload (256 MiB) — a corrupted length field
/// must fail fast instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxSectionBytes = 256ull << 20;

class ModelBundle {
 public:
  struct Section {
    std::string name;
    std::string payload;
  };

  /// Append a named section. Throws std::invalid_argument on an empty or
  /// duplicate name.
  void add(std::string name, std::string payload);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;

  /// Payload of the named section, or nullptr when absent.
  [[nodiscard]] const std::string* find(std::string_view name) const noexcept;

  /// Sections in insertion order (the order save() writes).
  [[nodiscard]] const std::vector<Section>& sections() const noexcept {
    return sections_;
  }

  [[nodiscard]] bool empty() const noexcept { return sections_.empty(); }

  /// Serialize to the format above. Throws std::runtime_error on I/O
  /// failure.
  void save(std::ostream& out) const;

  /// Parse a bundle, consuming the whole stream. Throws std::runtime_error
  /// on bad magic, a version other than kBundleFormatVersion, truncation,
  /// malformed section framing, or trailing bytes after the last section.
  [[nodiscard]] static ModelBundle load(std::istream& in);

  friend bool operator==(const ModelBundle&, const ModelBundle&);

 private:
  std::vector<Section> sections_;
};

[[nodiscard]] bool operator==(const ModelBundle::Section& a,
                              const ModelBundle::Section& b);

}  // namespace canids::model
