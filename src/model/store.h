// ModelStore: the typed layer over ModelBundle. A bundle is opaque named
// sections; the store knows which section holds which trained model, how to
// serialize each one, and how to read legacy artifacts (a bare
// golden-template text file from before bundles existed). Everything that
// persists or cold-starts trained detectors — `canids train --save`,
// `detect|fleet|campaign --model`, metrics::SharedModels — goes through
// these functions, so the set of known sections has exactly one home.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <string_view>

#include "baselines/interval_ids.h"
#include "baselines/muter_entropy.h"
#include "ids/golden_template.h"
#include "model/bundle.h"

namespace canids::model {

/// Section names, one per trained model (matching the detector-registry
/// backend each model belongs to).
inline constexpr std::string_view kGoldenSection = "golden-template";
inline constexpr std::string_view kMuterSection = "symbol-entropy";
inline constexpr std::string_view kIntervalSection = "interval";

/// The trained models a bundle can carry, as immutable shared handles —
/// absent entries are null (partial bundles are valid: a capture with too
/// little clean traffic for an entropy band still yields a template).
struct StoredModels {
  std::shared_ptr<const ids::GoldenTemplate> golden;
  std::shared_ptr<const baselines::MuterEntropyIds> muter;
  std::shared_ptr<const baselines::IntervalIds> interval;

  [[nodiscard]] bool empty() const noexcept {
    return !golden && !muter && !interval;
  }
};

/// Serialize every non-null model into its section. Throws
/// std::invalid_argument when all entries are null (an empty bundle is
/// always a caller bug).
[[nodiscard]] ModelBundle pack(const StoredModels& models);

/// Deserialize every known section. Unknown section names throw
/// std::runtime_error — a bundle written by a newer build must not
/// half-load (the format version gates layout changes; sections gate
/// content).
[[nodiscard]] StoredModels unpack(const ModelBundle& bundle);

/// One-line human summary of a section's model ("width 11, 35 training
/// windows, pairs yes"). Throws on unknown section names.
[[nodiscard]] std::string describe_section(const ModelBundle::Section& section);

/// Load trained models from a file: a ModelBundle (by magic), or — legacy —
/// a bare golden-template text file, returned as a golden-only StoredModels.
/// Throws std::runtime_error when the file cannot be opened or parsed.
[[nodiscard]] StoredModels load_models_file(
    const std::filesystem::path& path);

/// Save as a bundle. Throws std::runtime_error on I/O failure and
/// std::invalid_argument when `models` is empty.
void save_models_file(const std::filesystem::path& path,
                      const StoredModels& models);

}  // namespace canids::model
