#include "model/store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace canids::model {

namespace {

template <typename Model>
std::string serialized(const Model& model) {
  std::ostringstream out;
  model.save(out);
  return out.str();
}

}  // namespace

ModelBundle pack(const StoredModels& models) {
  if (models.empty()) {
    throw std::invalid_argument("model store: nothing to pack — every model "
                                "handle is null");
  }
  ModelBundle bundle;
  if (models.golden) {
    bundle.add(std::string(kGoldenSection), models.golden->serialize());
  }
  if (models.muter) {
    bundle.add(std::string(kMuterSection), serialized(*models.muter));
  }
  if (models.interval) {
    bundle.add(std::string(kIntervalSection), serialized(*models.interval));
  }
  return bundle;
}

StoredModels unpack(const ModelBundle& bundle) {
  StoredModels models;
  for (const ModelBundle::Section& section : bundle.sections()) {
    std::istringstream in(section.payload);
    if (section.name == kGoldenSection) {
      models.golden = std::make_shared<const ids::GoldenTemplate>(
          ids::GoldenTemplate::deserialize(section.payload));
    } else if (section.name == kMuterSection) {
      models.muter = std::make_shared<const baselines::MuterEntropyIds>(
          baselines::MuterEntropyIds::load(in));
    } else if (section.name == kIntervalSection) {
      models.interval = std::make_shared<const baselines::IntervalIds>(
          baselines::IntervalIds::load(in));
    } else {
      throw std::runtime_error("model store: unknown section '" +
                               section.name +
                               "' (written by a newer build?)");
    }
  }
  return models;
}

std::string describe_section(const ModelBundle::Section& section) {
  std::istringstream in(section.payload);
  std::ostringstream out;
  if (section.name == kGoldenSection) {
    const ids::GoldenTemplate golden =
        ids::GoldenTemplate::deserialize(section.payload);
    out << "width " << golden.width << ", " << golden.training_windows
        << " training windows, pairs " << (golden.has_pairs() ? "yes" : "no");
  } else if (section.name == kMuterSection) {
    const baselines::MuterEntropyIds muter =
        baselines::MuterEntropyIds::load(in);
    char text[128];
    std::snprintf(text, sizeof text,
                  "mean entropy %.4f bits, band threshold %.4f (alpha %g)",
                  muter.mean_entropy(), muter.threshold(),
                  muter.config().alpha);
    out << text;
  } else if (section.name == kIntervalSection) {
    const baselines::IntervalIds interval = baselines::IntervalIds::load(in);
    out << interval.tracked_ids() << " learned ID periods (fast ratio "
        << interval.config().fast_ratio << ", " << "alert at "
        << interval.config().violations_to_alert << " violations/window)";
  } else {
    throw std::runtime_error("model store: unknown section '" + section.name +
                             "'");
  }
  return out.str();
}

StoredModels load_models_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  // Sniff the magic: bundle files start with "canidsMB", the legacy
  // text format with "canids-golden-template v1".
  char magic[8] = {};
  in.read(magic, sizeof magic);
  const bool is_bundle =
      in.gcount() == sizeof magic &&
      std::string_view(magic, sizeof magic) == kBundleMagic;
  in.clear();
  in.seekg(0);
  if (is_bundle) {
    return unpack(ModelBundle::load(in));
  }
  StoredModels models;
  models.golden = std::make_shared<const ids::GoldenTemplate>(
      ids::GoldenTemplate::load(in));
  return models;
}

void save_models_file(const std::filesystem::path& path,
                      const StoredModels& models) {
  const ModelBundle bundle = pack(models);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot write " + path.string());
  }
  bundle.save(out);
}

}  // namespace canids::model
