#include "model/bundle.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace canids::model {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("model bundle: " + what);
}

void write_u32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out.write(bytes, sizeof bytes);
}

void write_u64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out.write(bytes, sizeof bytes);
}

std::uint32_t read_u32(std::istream& in, const char* what) {
  char bytes[4];
  in.read(bytes, sizeof bytes);
  if (in.gcount() != sizeof bytes) fail(std::string("truncated ") + what);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  char bytes[8];
  in.read(bytes, sizeof bytes);
  if (in.gcount() != sizeof bytes) fail(std::string("truncated ") + what);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::string read_bytes(std::istream& in, std::uint64_t count,
                       const char* what) {
  std::string out(static_cast<std::size_t>(count), '\0');
  in.read(out.data(), static_cast<std::streamsize>(count));
  if (static_cast<std::uint64_t>(in.gcount()) != count) {
    fail(std::string("truncated ") + what);
  }
  return out;
}

}  // namespace

bool operator==(const ModelBundle::Section& a, const ModelBundle::Section& b) {
  return a.name == b.name && a.payload == b.payload;
}

bool operator==(const ModelBundle& a, const ModelBundle& b) {
  return a.sections_ == b.sections_;
}

void ModelBundle::add(std::string name, std::string payload) {
  if (name.empty()) {
    throw std::invalid_argument("model bundle: section name must not be empty");
  }
  if (contains(name)) {
    throw std::invalid_argument("model bundle: duplicate section '" + name +
                                "'");
  }
  if (payload.size() > kMaxSectionBytes) {
    throw std::invalid_argument("model bundle: section '" + name +
                                "' exceeds the size cap");
  }
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

bool ModelBundle::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

const std::string* ModelBundle::find(std::string_view name) const noexcept {
  for (const Section& section : sections_) {
    if (section.name == name) return &section.payload;
  }
  return nullptr;
}

void ModelBundle::save(std::ostream& out) const {
  out.write(kBundleMagic.data(),
            static_cast<std::streamsize>(kBundleMagic.size()));
  write_u32(out, kBundleFormatVersion);
  write_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    write_u32(out, static_cast<std::uint32_t>(section.name.size()));
    out.write(section.name.data(),
              static_cast<std::streamsize>(section.name.size()));
    write_u64(out, section.payload.size());
    out.write(section.payload.data(),
              static_cast<std::streamsize>(section.payload.size()));
  }
  if (!out) fail("write failed");
}

ModelBundle ModelBundle::load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      std::string_view(magic, sizeof magic) != kBundleMagic) {
    fail("bad magic (not a canids model bundle)");
  }
  const std::uint32_t version = read_u32(in, "version field");
  if (version != kBundleFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads version " +
         std::to_string(kBundleFormatVersion) + ")");
  }
  const std::uint32_t count = read_u32(in, "section count");

  ModelBundle bundle;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in, "section name length");
    if (name_len == 0) fail("empty section name");
    if (name_len > 4096) fail("implausible section name length");
    std::string name = read_bytes(in, name_len, "section name");
    const std::uint64_t payload_len = read_u64(in, "section payload length");
    if (payload_len > kMaxSectionBytes) {
      fail("section '" + name + "' exceeds the size cap");
    }
    std::string payload = read_bytes(in, payload_len, "section payload");
    if (bundle.contains(name)) fail("duplicate section '" + name + "'");
    bundle.sections_.push_back(Section{std::move(name), std::move(payload)});
  }
  // A bundle is the whole stream: trailing bytes mean a corrupted file or
  // a concatenation accident, and must not load as if they weren't there.
  if (in.peek() != std::char_traits<char>::eof()) {
    fail("trailing bytes after the last section");
  }
  return bundle;
}

}  // namespace canids::model
