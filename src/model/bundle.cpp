#include "model/bundle.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/binary_io.h"

namespace canids::model {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("model bundle: " + what);
}

}  // namespace

bool operator==(const ModelBundle::Section& a, const ModelBundle::Section& b) {
  return a.name == b.name && a.payload == b.payload;
}

bool operator==(const ModelBundle& a, const ModelBundle& b) {
  return a.sections_ == b.sections_;
}

void ModelBundle::add(std::string name, std::string payload) {
  if (name.empty()) {
    throw std::invalid_argument("model bundle: section name must not be empty");
  }
  if (contains(name)) {
    throw std::invalid_argument("model bundle: duplicate section '" + name +
                                "'");
  }
  if (payload.size() > kMaxSectionBytes) {
    throw std::invalid_argument("model bundle: section '" + name +
                                "' exceeds the size cap");
  }
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

bool ModelBundle::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

const std::string* ModelBundle::find(std::string_view name) const noexcept {
  for (const Section& section : sections_) {
    if (section.name == name) return &section.payload;
  }
  return nullptr;
}

void ModelBundle::save(std::ostream& out) const {
  util::BinaryWriter writer(out);
  writer.bytes(kBundleMagic);
  writer.u32(kBundleFormatVersion);
  writer.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    writer.u32(static_cast<std::uint32_t>(section.name.size()));
    writer.bytes(section.name);
    writer.u64(section.payload.size());
    writer.bytes(section.payload);
  }
  if (!out) fail("write failed");
}

ModelBundle ModelBundle::load(std::istream& in) {
  util::BinaryReader reader(in, "model bundle");
  char magic[8];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      std::string_view(magic, sizeof magic) != kBundleMagic) {
    fail("bad magic (not a canids model bundle)");
  }
  const std::uint32_t version = reader.u32("version field");
  if (version != kBundleFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads version " +
         std::to_string(kBundleFormatVersion) + ")");
  }
  const std::uint32_t count = reader.u32("section count");

  ModelBundle bundle;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = reader.u32("section name length");
    if (name_len == 0) fail("empty section name");
    if (name_len > 4096) fail("implausible section name length");
    std::string name = reader.bytes(name_len, "section name");
    const std::uint64_t payload_len = reader.u64("section payload length");
    if (payload_len > kMaxSectionBytes) {
      fail("section '" + name + "' exceeds the size cap");
    }
    std::string payload = reader.bytes(payload_len, "section payload");
    if (bundle.contains(name)) fail("duplicate section '" + name + "'");
    bundle.sections_.push_back(Section{std::move(name), std::move(payload)});
  }
  // A bundle is the whole stream: trailing bytes mean a corrupted file or
  // a concatenation accident, and must not load as if they weren't there.
  reader.expect_eof("trailing bytes after the last section");
  return bundle;
}

}  // namespace canids::model
