// Mergeable partial campaign reports — the on-disk unit of distributed
// campaign execution. A sharded run (`canids campaign --shard I/N`)
// executes one deterministic slice of the canonical trial plan and saves a
// PartialReport: the spec (as its JSON form), the shard selector,
// fingerprints of the spec and of the plan, and the slice's
// fully-instrumented trial rows in canonical order. merge_partials (the
// `canids campaign merge` subcommand) reassembles N partials into the full
// CampaignReport — byte-identical to the single-process run — after
// proving the shards belong together: same spec fingerprint, same plan
// fingerprint, same shard count, no duplicate and no missing shards.
//
// File format (integers little-endian; doubles as raw IEEE-754 bit
// patterns, because trial metrics must survive the round trip bit-exactly):
//
//   offset  bytes  field
//   ------  -----  -----------------------------------------------
//   0       8      magic "canidsPR"
//   8       4      format version (u32, currently 1)
//   12      4      shard index (u32, 0-based)
//   16      4      shard count (u32)
//   20      8      spec fingerprint (u64, FNV-1a over the spec JSON)
//   28      8      plan fingerprint (u64, FNV-1a over the canonical plan)
//   36      8      full-plan trial count (u64)
//   44      4+n    spec JSON (u32 length + bytes)
//   then    8      row count (u64)
//   then, per row: u64 canonical plan index + the serialized trial
//
// load() is strict in the ModelBundle::load tradition: bad magic, an
// unsupported version, truncation at any byte, trailing bytes, a spec
// that does not hash to the recorded fingerprints, rows out of canonical
// order, rows the shard selector does not own, or rows whose coordinates
// disagree with the plan all throw — a half-written or foreign partial
// must never merge silently.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "campaign/report.h"
#include "campaign/spec.h"
#include "metrics/experiment.h"

namespace canids::campaign {

/// First 8 bytes of every partial-report file.
inline constexpr std::string_view kPartialMagic = "canidsPR";

/// Current on-disk format version; load() rejects anything else.
inline constexpr std::uint32_t kPartialFormatVersion = 1;

/// FNV-1a fingerprint of the spec's canonical JSON form — what shards of
/// the same campaign must agree on. Execution knobs (workers, shard,
/// model_path) are not serialized, so cold-started and train-in-process
/// shards of one spec fingerprint identically.
[[nodiscard]] std::uint64_t fingerprint_spec(const CampaignSpec& spec);

/// FNV-1a fingerprint of a canonical trial plan (indices, coordinates,
/// seeds). Redundant with fingerprint_spec today, but it pins the plan
/// *algorithm* too: if a future version reorders plan(), old partials
/// refuse to merge instead of silently permuting trials.
[[nodiscard]] std::uint64_t fingerprint_plan(const std::vector<TrialPlan>& plan);

struct PartialReport {
  struct Row {
    std::uint64_t plan_index = 0;  ///< position in the FULL canonical plan
    metrics::InstrumentedTrial trial;
  };

  CampaignSpec spec;  ///< the full campaign this shard belongs to
  ShardSelector shard;
  std::vector<Row> rows;  ///< canonical order (ascending plan_index)

  /// Serialize to the format above. Throws std::runtime_error on I/O
  /// failure.
  void save(std::ostream& out) const;
  void save_file(const std::filesystem::path& path) const;

  /// Parse a partial report, consuming the whole stream; strict (see the
  /// header comment). Throws std::runtime_error on any violation.
  [[nodiscard]] static PartialReport load(std::istream& in);
  [[nodiscard]] static PartialReport load_file(const std::filesystem::path& path);
};

/// Reassemble a full campaign from its shards and aggregate exactly as a
/// single-process run would — the result is byte-identical to
/// CampaignRunner::run() on the unsharded spec. Throws std::runtime_error
/// when the partials do not form exactly one complete campaign: foreign
/// spec or plan fingerprints, disagreeing shard counts, a duplicate shard,
/// or a missing shard.
[[nodiscard]] CampaignReport merge_partials(std::vector<PartialReport> partials);

}  // namespace canids::campaign
