// Multithreaded campaign execution. The runner cold-starts the shared
// models from a bundle (spec.model_path) or trains them exactly once
// (std::call_once), fans the spec's trial grid out over a worker pool —
// each worker owns an ExperimentRunner that adopts the shared bundle, so no
// worker ever re-trains — and aggregates the results in the canonical plan
// order. Per-trial seeds are fixed by the plan, and every trial writes into
// its own slot, so the report is byte-identical at any worker count — and
// byte-identical between a bundle cold-start and an in-process training run
// of the same spec (the model persistence round-trips bit-exactly).
// Capture-replay specs route each trial through the TraceSource layer over
// the recorded file instead of the synthetic vehicle.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "campaign/partial.h"
#include "campaign/report.h"
#include "campaign/spec.h"
#include "metrics/experiment.h"
#include "trace/capture_labels.h"

namespace canids::campaign {

/// Wall-clock execution stats — reported separately from the CampaignReport
/// on purpose: report artifacts must stay byte-identical across worker
/// counts, and timing is exactly what varies.
struct CampaignRunStats {
  std::size_t trials = 0;
  int workers = 0;
  double train_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Models actually trained in-process (0 on a full bundle cold-start —
  /// the "no training happened" guarantee `campaign --model` asserts).
  std::uint64_t training_passes = 0;
  [[nodiscard]] double trials_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
};

class CampaignRunner {
 public:
  /// Throws std::invalid_argument when the spec is degenerate.
  explicit CampaignRunner(CampaignSpec spec);

  /// As above, but seed the shared bundle with pretrained pieces (e.g.
  /// from a sibling campaign over the same ExperimentConfig). Absent
  /// entries are still trained once on the first run(); present ones are
  /// never re-trained.
  CampaignRunner(CampaignSpec spec, metrics::SharedModels pretrained);

  /// Execute the full grid and aggregate. Training happens once, on the
  /// first call; later runs (e.g. a re-sweep with the same runner) reuse
  /// the cached models. Worker exceptions propagate after the pool joins.
  /// Throws std::invalid_argument when the spec selects a shard — a slice
  /// cannot aggregate into a full report; use run_shard() and merge.
  [[nodiscard]] CampaignReport run();

  /// Execute only the spec's shard slice (the whole plan when no shard is
  /// set — so merge-of-one reproduces run() byte-identically) over the
  /// same worker pool, and return the mergeable partial report. Training
  /// and cold-start behave exactly as in run(): a shard started from a
  /// model bundle performs zero training passes.
  [[nodiscard]] PartialReport run_shard();

  /// Stats of the most recent run().
  [[nodiscard]] const CampaignRunStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// The shared model set, cold-starting or training it first if needed —
  /// the handle `campaign --save-models` persists so a later run (or a
  /// fleet deployment) skips training entirely.
  [[nodiscard]] const metrics::SharedModels& models();

  /// Worker count a spec resolves to on this machine: `spec.workers`, or
  /// hardware concurrency when 0, clamped to the trial count so a pool
  /// never holds threads that could not receive a trial (an empty sharded
  /// slice resolves to 0 workers and spawns no pool at all).
  [[nodiscard]] static int resolve_workers(const CampaignSpec& spec,
                                           std::size_t trials);

 private:
  void train_once();

  /// The worker pool shared by run() and run_shard(): executes `plan`'s
  /// trials into a result vector in plan order and refreshes stats_.
  [[nodiscard]] std::vector<metrics::InstrumentedTrial> execute(
      const std::vector<TrialPlan>& plan);

  CampaignSpec spec_;
  trace::CaptureLabels labels_;
  std::once_flag trained_;
  metrics::SharedModels models_;
  CampaignRunStats stats_;
};

}  // namespace canids::campaign
