#include "campaign/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/registry.h"
#include "ids/golden_template.h"
#include "trace/trace_io.h"

namespace canids::campaign {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  for (const std::string& name : spec_.detectors) {
    if (!analysis::DetectorRegistry::instance().contains(name)) {
      throw analysis::UnknownDetectorError(
          "campaign spec: unknown detector '" + name + "'");
    }
  }

  if (spec_.capture_mode()) {
    const std::filesystem::path dir(spec_.capture_dir);
    const std::filesystem::path labels_file =
        spec_.labels_path.empty() ? dir / "labels.csv"
                                  : std::filesystem::path(spec_.labels_path);
    // Resolve the capture list once, here, so the spec embedded in the
    // report pins the exact files the campaign replayed.
    const bool scanned = spec_.captures.empty();
    if (scanned) {
      if (!std::filesystem::is_directory(dir)) {
        throw std::invalid_argument("campaign: capture_dir '" +
                                    spec_.capture_dir +
                                    "' is not a directory");
      }
      const bool labels_exist = std::filesystem::exists(labels_file);
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        // Filesystem equivalence, not lexical comparison: an explicit
        // --labels path spelled differently (absolute, ./-prefixed) must
        // still keep the labels CSV out of the capture list.
        if (labels_exist &&
            std::filesystem::equivalent(entry.path(), labels_file)) {
          continue;
        }
        spec_.captures.push_back(entry.path().filename().string());
      }
      std::sort(spec_.captures.begin(), spec_.captures.end());
      if (spec_.captures.empty()) {
        throw std::invalid_argument("campaign: capture_dir '" +
                                    spec_.capture_dir +
                                    "' holds no capture files");
      }
    }
    // Ground truth: an explicitly named labels file must exist; the
    // default path may be absent (every capture scores as clean traffic).
    if (std::filesystem::exists(labels_file)) {
      labels_ = trace::read_capture_labels_file(labels_file);
    } else if (!spec_.labels_path.empty()) {
      throw std::invalid_argument("campaign: cannot read labels file '" +
                                  spec_.labels_path + "'");
    }
    // Typo guard, but only when WE produced the capture list: a scanned
    // directory provably holds every file, so an unmatched label is a
    // mistake. An explicit `captures` subset legitimately runs against a
    // directory-wide labels file that also covers the excluded recordings.
    if (scanned) {
      for (const auto& [capture, intervals] : labels_) {
        if (std::find(spec_.captures.begin(), spec_.captures.end(),
                      capture) == spec_.captures.end()) {
          throw std::invalid_argument(
              "campaign: labels file names capture '" + capture +
              "' which is not in the campaign's capture list");
        }
      }
    }
  }
}

CampaignRunner::CampaignRunner(CampaignSpec spec,
                               metrics::SharedModels pretrained)
    : CampaignRunner(std::move(spec)) {
  models_ = std::move(pretrained);
}

int CampaignRunner::resolve_workers(const CampaignSpec& spec,
                                    std::size_t trials) {
  int workers = spec.workers > 0
                    ? spec.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  // hardware_concurrency() may legitimately report 0 (unknown).
  if (workers < 1) workers = 1;
  // Never hold threads that could not receive a trial: a pool larger than
  // the (possibly sharded) plan would spin up idle workers, and an empty
  // slice needs no pool at all.
  if (static_cast<std::size_t>(workers) > trials) {
    workers = static_cast<int>(trials);
  }
  return workers;
}

void CampaignRunner::train_once() {
  const auto started = std::chrono::steady_clock::now();
  metrics::ExperimentRunner master(spec_.experiment);
  // Pieces seeded through the pretrained-bundle constructor short-circuit
  // their training below.
  master.adopt_models(models_);

  if (!spec_.model_path.empty()) {
    // Full cold start: every model the bundle carries is adopted; only
    // pieces the bundle lacks (and a requested backend needs) are trained.
    master.adopt_models(metrics::SharedModels::from_file(spec_.model_path));
  }
  if (!spec_.template_path.empty()) {
    std::ifstream in(spec_.template_path);
    if (!in) {
      throw std::runtime_error("campaign: cannot read template " +
                               spec_.template_path);
    }
    metrics::SharedModels pretrained;
    pretrained.golden = std::make_shared<const ids::GoldenTemplate>(
        ids::GoldenTemplate::load(in));
    master.adopt_models(pretrained);
  }

  // Train only what the requested backends can actually use (the same
  // gating rule make_backend applies per trial).
  bool need_muter = false;
  bool need_interval = false;
  for (const std::string& name : spec_.detectors) {
    const metrics::ExperimentRunner::BackendModelNeeds needs =
        metrics::ExperimentRunner::backend_model_needs(name);
    need_muter = need_muter || needs.muter;
    need_interval = need_interval || needs.interval;
  }

  models_.golden = master.train_shared();
  models_.training_snapshots = master.training_snapshots();
  if (need_muter) models_.muter = master.muter_model();
  if (need_interval) models_.interval = master.interval_model();
  stats_.train_seconds = elapsed_seconds(started);
  stats_.training_passes = master.training_passes();
}

const metrics::SharedModels& CampaignRunner::models() {
  std::call_once(trained_, [this] { train_once(); });
  return models_;
}

CampaignReport CampaignRunner::run() {
  if (spec_.shard) {
    throw std::invalid_argument(
        "campaign: spec selects shard " + spec_.shard->to_string() +
        " — run_shard() produces the partial report; merge the partials "
        "for the full report");
  }
  std::vector<metrics::InstrumentedTrial> results = execute(spec_.plan());
  return make_report(spec_, std::move(results));
}

PartialReport CampaignRunner::run_shard() {
  const std::vector<TrialPlan> plan = spec_.sharded_plan();
  std::vector<metrics::InstrumentedTrial> results = execute(plan);

  PartialReport partial;
  partial.spec = spec_;
  partial.spec.shard.reset();  // the spec names the campaign, not the slice
  partial.shard = spec_.shard.value_or(ShardSelector{});
  partial.rows.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    partial.rows.push_back(
        PartialReport::Row{plan[i].index, std::move(results[i])});
  }
  return partial;
}

std::vector<metrics::InstrumentedTrial> CampaignRunner::execute(
    const std::vector<TrialPlan>& plan) {
  std::call_once(trained_, [this] { train_once(); });

  const auto started = std::chrono::steady_clock::now();
  const int workers = resolve_workers(spec_, plan.size());

  std::vector<metrics::InstrumentedTrial> results(plan.size());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker_loop = [&] {
    // One runner per worker: its own vehicle and bus state, but the shared
    // immutable model bundle — no training past the call_once above.
    metrics::ExperimentRunner runner(spec_.experiment);
    runner.adopt_models(models_);
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= plan.size()) return;
      const TrialPlan& trial = plan[index];
      try {
        if (!trial.capture.empty()) {
          // Capture replay: stream the recorded file through the backend
          // (constant memory), scored against the sidecar labels.
          const std::unique_ptr<trace::RecordSource> source =
              trace::open_trace_source(
                  std::filesystem::path(spec_.capture_dir) / trial.capture);
          const auto found = labels_.find(trial.capture);
          static const std::vector<trace::LabelInterval> kClean;
          results[index] = runner.run_capture_trial(
              trial.detector, *source,
              found != labels_.end() ? found->second : kClean, trial.capture,
              trial.trial_seed);
        } else if (trial.sweep_id) {
          results[index] = runner.run_instrumented_single_id_trial(
              trial.detector, *trial.sweep_id, trial.frequency_hz,
              trial.trial_seed);
        } else {
          results[index] = runner.run_instrumented_trial(
              trial.detector, trial.kind, trial.frequency_hz,
              trial.trial_seed);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so sibling workers stop picking up new trials.
        next.store(plan.size());
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);

  stats_.trials = plan.size();
  stats_.workers = workers;
  stats_.wall_seconds = elapsed_seconds(started);
  return results;
}

}  // namespace canids::campaign
