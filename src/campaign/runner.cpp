#include "campaign/runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/registry.h"
#include "ids/golden_template.h"

namespace canids::campaign {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  for (const std::string& name : spec_.detectors) {
    if (!analysis::DetectorRegistry::instance().contains(name)) {
      throw analysis::UnknownDetectorError(
          "campaign spec: unknown detector '" + name + "'");
    }
  }
}

CampaignRunner::CampaignRunner(CampaignSpec spec,
                               metrics::SharedModels pretrained)
    : CampaignRunner(std::move(spec)) {
  models_ = std::move(pretrained);
}

int CampaignRunner::resolve_workers(const CampaignSpec& spec,
                                    std::size_t trials) {
  int workers = spec.workers > 0
                    ? spec.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<std::size_t>(workers) > trials && trials > 0) {
    workers = static_cast<int>(trials);
  }
  return workers;
}

void CampaignRunner::train_once() {
  const auto started = std::chrono::steady_clock::now();
  metrics::ExperimentRunner master(spec_.experiment);
  // Pieces seeded through the pretrained-bundle constructor short-circuit
  // their training below.
  master.adopt_models(models_);

  if (!spec_.template_path.empty()) {
    std::ifstream in(spec_.template_path);
    if (!in) {
      throw std::runtime_error("campaign: cannot read template " +
                               spec_.template_path);
    }
    metrics::SharedModels pretrained;
    pretrained.golden = std::make_shared<const ids::GoldenTemplate>(
        ids::GoldenTemplate::load(in));
    master.adopt_models(pretrained);
  }

  // Train only what the requested backends can actually use (the same
  // gating rule make_backend applies per trial).
  bool need_muter = false;
  bool need_interval = false;
  for (const std::string& name : spec_.detectors) {
    const metrics::ExperimentRunner::BackendModelNeeds needs =
        metrics::ExperimentRunner::backend_model_needs(name);
    need_muter = need_muter || needs.muter;
    need_interval = need_interval || needs.interval;
  }

  models_.golden = master.train_shared();
  models_.training_snapshots = master.training_snapshots();
  if (need_muter) models_.muter = master.muter_model();
  if (need_interval) models_.interval = master.interval_model();
  stats_.train_seconds = elapsed_seconds(started);
}

CampaignReport CampaignRunner::run() {
  const std::vector<TrialPlan> plan = spec_.plan();
  std::call_once(trained_, [this] { train_once(); });

  const auto started = std::chrono::steady_clock::now();
  const int workers = resolve_workers(spec_, plan.size());

  std::vector<metrics::InstrumentedTrial> results(plan.size());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker_loop = [&] {
    // One runner per worker: its own vehicle and bus state, but the shared
    // immutable model bundle — no training past the call_once above.
    metrics::ExperimentRunner runner(spec_.experiment);
    runner.adopt_models(models_);
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= plan.size()) return;
      const TrialPlan& trial = plan[index];
      try {
        results[index] =
            trial.sweep_id
                ? runner.run_instrumented_single_id_trial(
                      trial.detector, *trial.sweep_id, trial.frequency_hz,
                      trial.trial_seed)
                : runner.run_instrumented_trial(trial.detector, trial.kind,
                                                trial.frequency_hz,
                                                trial.trial_seed);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so sibling workers stop picking up new trials.
        next.store(plan.size());
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);

  stats_.trials = plan.size();
  stats_.workers = workers;
  stats_.wall_seconds = elapsed_seconds(started);
  return make_report(spec_, std::move(results));
}

}  // namespace canids::campaign
