// Declarative evaluation campaigns: the full grid of detector backend ×
// attack scenario (or single-ID sweep) × injection rate × seed that the
// comparative CAN-IDS literature demands, described as one value. A spec
// can be built in code, parsed from JSON (the CLI path), or taken from the
// built-in smoke preset; CampaignRunner executes the grid and make_report
// aggregates it. Per-trial seeds derive from the cell coordinates alone,
// so a spec pins its results regardless of worker count or scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attacks/scenario.h"
#include "metrics/experiment.h"

namespace canids::campaign {

/// JSON string escaping (quotes, backslashes, all control characters) used
/// by the spec and report emitters.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Short machine-readable scenario token used in specs and report columns
/// ("flood", "single", ..., "masquerade") — the same vocabulary `canids
/// simulate --attack` accepts. The token itself lives with the scenario
/// traits table (attacks/scenario.h); this alias keeps campaign callers
/// working.
using attacks::scenario_token;
[[nodiscard]] std::optional<attacks::ScenarioKind> scenario_from_token(
    std::string_view token);

/// One slice of a campaign's canonical trial plan, written "I/N" on the
/// command line (1-based I of N shards). Internally 0-based: shard `index`
/// owns every trial whose canonical plan index is congruent to it modulo
/// `count`. Striding keeps the detector-major plan balanced across shards,
/// and the slices are disjoint and cover the plan for ANY count — the
/// invariance `canids campaign merge` rebuilds a byte-identical report
/// from.
struct ShardSelector {
  std::uint32_t index = 0;  ///< 0-based shard position, < count
  std::uint32_t count = 1;  ///< total shards, >= 1

  [[nodiscard]] bool covers(std::size_t trial_index) const noexcept {
    return count > 0 && trial_index % count == index;
  }

  /// Parse the CLI form "I/N" (1-based, 1 <= I <= N). Throws
  /// std::invalid_argument on anything else — a silently mis-parsed shard
  /// would drop or duplicate trials.
  [[nodiscard]] static ShardSelector parse(std::string_view text);

  /// The CLI form back: index 0 of 3 prints "1/3".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ShardSelector&, const ShardSelector&) = default;
};

/// One planned trial: a fixed position in the campaign grid. The trial
/// seed depends only on the cell coordinates, never on which worker runs
/// it or when.
struct TrialPlan {
  std::size_t index = 0;  ///< position in the campaign's canonical order
  std::string detector;
  attacks::ScenarioKind kind{};
  /// Set in single-ID sweep mode; the trial injects this identifier.
  std::optional<std::uint32_t> sweep_id;
  /// Set in capture-replay mode; the recorded capture this trial replays
  /// (file name inside the spec's capture_dir). kind/frequency carry no
  /// meaning for such trials.
  std::string capture;
  double frequency_hz = 0.0;
  int seed_index = 0;
  std::uint64_t trial_seed = 0;
};

struct CampaignSpec {
  std::string name = "campaign";

  /// Detector backends by registry name.
  std::vector<std::string> detectors = {"bit-entropy"};
  /// Attack scenarios (ignored when sweep_ids is non-empty).
  std::vector<attacks::ScenarioKind> scenarios{attacks::kAllScenarios.begin(),
                                               attacks::kAllScenarios.end()};
  /// When non-empty, sweep single-ID injections over these identifiers
  /// instead of the scenario taxonomy (the Fig. 3 axis).
  std::vector<std::uint32_t> sweep_ids;
  /// Injection-rate sweep (frames per second the attacker generates).
  std::vector<double> rates_hz = {100.0, 50.0, 20.0, 10.0};
  /// Trials per cell; per-trial seeds are derived deterministically.
  int seeds = 2;

  /// Base experiment: master seed, timings, vehicle and pipeline knobs.
  metrics::ExperimentConfig experiment;

  /// Optional pretrained golden template (cold start — the campaign loads
  /// it instead of training in-process). Legacy: model_path supersedes it.
  std::string template_path;

  /// Optional pretrained model bundle (see model::ModelBundle): the
  /// campaign cold-starts EVERY detector from it and performs zero
  /// training passes when the bundle covers all models the requested
  /// detectors need. Mutually exclusive with template_path.
  std::string model_path;

  // ---- capture-replay mode -------------------------------------------------
  /// When set, the campaign replays recorded captures from this directory
  /// instead of driving the synthetic vehicle: the trial grid becomes
  /// detector x capture (scenarios/sweep_ids/rates_hz/seeds are unused),
  /// scored against the attack-window labels in labels_path.
  std::string capture_dir;
  /// Capture file names inside capture_dir, in trial order. Left empty in
  /// a spec file, the runner fills it by scanning capture_dir (sorted,
  /// labels file excluded) — after which the spec embedded in the report
  /// pins the exact file list.
  std::vector<std::string> captures;
  /// Attack-window sidecar CSV (see trace::read_capture_labels). Empty
  /// means capture_dir/labels.csv, and in that default case a missing file
  /// labels every capture clean.
  std::string labels_path;

  /// True when this spec replays recorded captures.
  [[nodiscard]] bool capture_mode() const noexcept {
    return !capture_dir.empty() || !captures.empty();
  }

  /// Detector-sensitivity multipliers swept for the ROC curve (windows are
  /// re-judged at score >= scale). The native operating point is scale 1;
  /// 0 alerts on every evaluated window.
  std::vector<double> threshold_scales = default_threshold_scales();

  /// Worker threads; 0 means hardware concurrency.
  int workers = 0;

  /// When set, this process executes only the selected slice of plan()
  /// (see sharded_plan()) and emits a PartialReport instead of a full
  /// report. Deliberately NOT serialized, like `workers`: the shard
  /// selector is an execution knob, and the report merged from N partials
  /// must be byte-identical to the unsharded run of the same spec.
  std::optional<ShardSelector> shard;

  [[nodiscard]] static std::vector<double> default_threshold_scales();

  /// Tiny preset sized for a CI smoke run (seconds, not minutes).
  [[nodiscard]] static CampaignSpec smoke();

  /// Parse a spec from its JSON form. Unknown keys and malformed values
  /// throw std::invalid_argument — nothing in a spec file is silently
  /// ignored.
  [[nodiscard]] static CampaignSpec from_json(std::string_view text);

  /// The spec as JSON (the exact form from_json accepts; also embedded in
  /// every report so results stay self-describing).
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t trial_count() const noexcept;

  /// The full grid in canonical order: detector-major, then scenario (or
  /// sweep ID), then rate, then seed. Trial seeds reproduce the historic
  /// bench orderings: scenario cells use rate-major counters (the Table I
  /// run_scenario order), sweep cells count per identifier (Fig. 3).
  [[nodiscard]] std::vector<TrialPlan> plan() const;

  /// plan() filtered to the trials the spec's shard selector owns (the
  /// whole plan when no shard is set). TrialPlan::index keeps its
  /// FULL-plan value — the coordinate partial reports merge by. A slice
  /// may legitimately be empty when count exceeds the trial count.
  [[nodiscard]] std::vector<TrialPlan> sharded_plan() const;

  /// Throws std::invalid_argument when the grid is degenerate (no
  /// detectors, no scenarios/IDs, no rates, seeds < 1, a shard index
  /// outside its count, ...).
  void validate() const;
};

}  // namespace canids::campaign
