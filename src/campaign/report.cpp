#include "campaign/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace canids::campaign {

namespace {

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

std::string fmt_optional(const std::optional<double>& value) {
  return value ? fmt(*value) : std::string();
}

std::string hex_id(std::uint32_t id) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%03X", id);
  return buffer;
}

std::string sweep_field(const std::optional<std::uint32_t>& id) {
  return id ? hex_id(*id) : std::string();
}

/// Did this window overlap the trial's attack interval(s)? The ground
/// truth every confusion/ROC entry scores against. Synthetic trials carry
/// one interval [attack_start, attack_end); capture trials carry the
/// labeled interval list (possibly empty — a clean recording).
bool window_is_positive(const metrics::InstrumentedTrial& trial,
                        const metrics::WindowObservation& window) {
  if (!trial.capture.empty()) {
    for (const trace::LabelInterval& interval : trial.attack_intervals) {
      if (interval.overlaps(window.start, window.end)) return true;
    }
    return false;
  }
  return window.start < trial.attack_end && window.end > trial.attack_start;
}

/// Scenario column value: capture trials have no synthetic scenario.
std::string scenario_field(const std::string& capture,
                           attacks::ScenarioKind kind) {
  return capture.empty() ? std::string(scenario_token(kind))
                         : std::string("capture");
}

double f1_of(double precision, double recall) {
  const double denom = precision + recall;
  return denom > 0.0 ? 2.0 * precision * recall / denom : 0.0;
}

std::string json_trial(const metrics::InstrumentedTrial& trial) {
  std::ostringstream out;
  out << "{\"detector\": \"" << json_escape(trial.backend)
      << "\", \"scenario\": \""
      << scenario_field(trial.capture, trial.kind) << "\"";
  if (!trial.capture.empty()) {
    out << ", \"capture\": \"" << json_escape(trial.capture) << "\"";
  }
  if (trial.single_id) out << ", \"sweep_id\": " << *trial.single_id;
  out << ", \"rate_hz\": " << fmt(trial.frequency_hz)
      << ", \"trial_seed\": " << trial.trial_seed
      << ", \"injected_frames\": " << trial.frames.injected_frames
      << ", \"detected_frames\": " << trial.frames.detected_frames
      << ", \"detection_rate\": " << fmt(trial.detection_rate)
      << ", \"tp\": " << trial.windows.true_positive
      << ", \"fp\": " << trial.windows.false_positive
      << ", \"tn\": " << trial.windows.true_negative
      << ", \"fn\": " << trial.windows.false_negative
      << ", \"inference_accuracy\": "
      << (trial.inference_accuracy ? fmt(*trial.inference_accuracy) : "null")
      << ", \"injection_rate_arbitration\": "
      << fmt(trial.injection_rate_arbitration)
      << ", \"injection_rate_success\": " << fmt(trial.injection_rate_success)
      << ", \"bus_load\": " << fmt(trial.bus_load);
  const auto latency = trial.detection_latency();
  out << ", \"detection_latency_s\": "
      << (latency ? fmt(util::to_seconds(*latency)) : "null") << "}";
  return out.str();
}

std::string json_cell(const CampaignCell& cell) {
  std::ostringstream out;
  out << "{\"detector\": \"" << json_escape(cell.detector)
      << "\", \"scenario\": \""
      << scenario_field(cell.capture, cell.kind) << "\"";
  if (!cell.capture.empty()) {
    out << ", \"capture\": \"" << json_escape(cell.capture) << "\"";
  }
  if (cell.sweep_id) out << ", \"sweep_id\": " << *cell.sweep_id;
  out << ", \"rate_hz\": " << fmt(cell.frequency_hz)
      << ", \"trials\": " << cell.trials
      << ", \"detection_rate\": " << fmt(cell.detection_rate)
      << ", \"tpr\": " << fmt(cell.tpr) << ", \"fpr\": " << fmt(cell.fpr)
      << ", \"precision\": " << fmt(cell.precision)
      << ", \"f1\": " << fmt(cell.f1) << ", \"inference_accuracy\": "
      << (cell.inference_accuracy ? fmt(*cell.inference_accuracy) : "null")
      << ", \"mean_injection_rate_arbitration\": "
      << fmt(cell.mean_injection_rate_arbitration)
      << ", \"mean_injection_rate_success\": "
      << fmt(cell.mean_injection_rate_success)
      << ", \"mean_bus_load\": " << fmt(cell.mean_bus_load)
      << ", \"detected_trials\": " << cell.detected_trials
      << ", \"mean_detection_latency_s\": "
      << (cell.mean_latency_seconds ? fmt(*cell.mean_latency_seconds)
                                    : "null")
      << ", \"auc\": " << fmt(cell.auc) << ", \"roc\": [";
  for (std::size_t i = 0; i < cell.roc.size(); ++i) {
    const RocPoint& point = cell.roc[i];
    out << (i ? ", " : "") << "{\"scale\": " << fmt(point.scale)
        << ", \"tpr\": " << fmt(point.tpr) << ", \"fpr\": " << fmt(point.fpr)
        << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

double auc_of(const std::vector<RocPoint>& points) {
  std::vector<std::pair<double, double>> curve;
  curve.reserve(points.size() + 2);
  curve.emplace_back(0.0, 0.0);
  curve.emplace_back(1.0, 1.0);
  for (const RocPoint& point : points) {
    curve.emplace_back(point.fpr, point.tpr);
  }
  std::sort(curve.begin(), curve.end());
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    auc += (curve[i].first - curve[i - 1].first) *
           (curve[i].second + curve[i - 1].second) / 2.0;
  }
  return auc;
}

CampaignReport make_report(CampaignSpec spec,
                           std::vector<metrics::InstrumentedTrial> trials) {
  const std::vector<TrialPlan> plan = spec.plan();
  if (plan.size() != trials.size()) {
    throw std::invalid_argument("make_report: trial count does not match "
                                "the spec's plan");
  }

  CampaignReport report;
  report.spec = std::move(spec);
  report.trials = std::move(trials);

  // A synthetic cell aggregates the seeds of one grid coordinate; a
  // capture replays deterministically, so each capture trial is its own
  // cell.
  const std::size_t per_cell =
      report.spec.capture_mode()
          ? 1
          : static_cast<std::size_t>(report.spec.seeds);
  for (std::size_t base = 0; base < plan.size(); base += per_cell) {
    const TrialPlan& head = plan[base];
    CampaignCell cell;
    cell.detector = head.detector;
    cell.kind = head.kind;
    cell.sweep_id = head.sweep_id;
    cell.capture = head.capture;
    cell.frequency_hz = head.frequency_hz;
    cell.trials = static_cast<int>(per_cell);

    double latency_sum_seconds = 0.0;
    double inference_hit_sum = 0.0;
    std::uint64_t inference_windows = 0;

    for (std::size_t t = base; t < base + per_cell; ++t) {
      const metrics::InstrumentedTrial& trial = report.trials[t];
      cell.frames += trial.frames;
      cell.windows += trial.windows;
      inference_hit_sum += trial.inference_hit_sum;
      inference_windows += trial.inference_windows;
      cell.mean_injection_rate_arbitration +=
          trial.injection_rate_arbitration / static_cast<double>(per_cell);
      cell.mean_injection_rate_success +=
          trial.injection_rate_success / static_cast<double>(per_cell);
      cell.mean_bus_load += trial.bus_load / static_cast<double>(per_cell);
      if (const auto latency = trial.detection_latency()) {
        ++cell.detected_trials;
        latency_sum_seconds += util::to_seconds(*latency);
      }
    }

    cell.detection_rate = cell.frames.detection_rate();
    cell.tpr = cell.windows.true_positive_rate();
    cell.fpr = cell.windows.false_positive_rate();
    cell.precision = cell.windows.precision();
    cell.f1 = f1_of(cell.precision, cell.tpr);
    if (inference_windows > 0) {
      cell.inference_accuracy =
          inference_hit_sum / static_cast<double>(inference_windows);
    }
    if (cell.detected_trials > 0) {
      cell.mean_latency_seconds =
          latency_sum_seconds / static_cast<double>(cell.detected_trials);
    }

    // The ROC sweep: re-judge every evaluated window of the cell at each
    // sensitivity multiplier using the recorded threshold-free score.
    cell.roc.reserve(report.spec.threshold_scales.size());
    for (const double scale : report.spec.threshold_scales) {
      RocPoint point;
      point.scale = scale;
      for (std::size_t t = base; t < base + per_cell; ++t) {
        const metrics::InstrumentedTrial& trial = report.trials[t];
        for (const metrics::WindowObservation& window : trial.observations) {
          if (!window.evaluated) continue;
          point.windows.record(window_is_positive(trial, window),
                               window.score() >= scale);
        }
      }
      point.tpr = point.windows.true_positive_rate();
      point.fpr = point.windows.false_positive_rate();
      cell.roc.push_back(point);
    }
    cell.auc = auc_of(cell.roc);

    report.cells.push_back(std::move(cell));
  }
  return report;
}

ScenarioRollup CampaignReport::rollup(std::string_view detector,
                                      attacks::ScenarioKind kind) const {
  ScenarioRollup rollup;
  rollup.kind = kind;
  double injection_sum = 0.0;
  double inference_hit_sum = 0.0;
  std::uint64_t inference_windows = 0;
  for (const metrics::InstrumentedTrial& trial : trials) {
    if (trial.backend != detector || trial.kind != kind || trial.single_id ||
        !trial.capture.empty()) {
      continue;
    }
    ++rollup.trials;
    rollup.frames += trial.frames;
    rollup.windows += trial.windows;
    injection_sum += trial.injection_rate_arbitration;
    inference_hit_sum += trial.inference_hit_sum;
    inference_windows += trial.inference_windows;
  }
  rollup.detection_rate = rollup.frames.detection_rate();
  rollup.false_positive_rate = rollup.windows.false_positive_rate();
  if (rollup.trials > 0) {
    rollup.mean_injection_rate =
        injection_sum / static_cast<double>(rollup.trials);
  }
  if (inference_windows > 0) {
    rollup.inference_accuracy =
        inference_hit_sum / static_cast<double>(inference_windows);
  }
  return rollup;
}

void CampaignReport::write_trials_csv(std::ostream& out) const {
  util::CsvWriter csv(
      out, {"detector", "scenario", "capture", "sweep_id", "rate_hz",
            "seed_index", "trial_seed", "injected_frames", "detected_frames",
            "detection_rate", "tp", "fp", "tn", "fn", "tpr", "fpr",
            "inference_accuracy", "injection_rate_arbitration",
            "injection_rate_success", "injected_transmitted", "bus_load",
            "windows_closed", "windows_evaluated", "alerts",
            "detection_latency_s"});
  const std::size_t per_cell =
      spec.capture_mode() ? 1 : static_cast<std::size_t>(spec.seeds);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const metrics::InstrumentedTrial& trial = trials[i];
    const auto latency = trial.detection_latency();
    csv.write_row(
        {trial.backend, scenario_field(trial.capture, trial.kind),
         trial.capture, sweep_field(trial.single_id),
         fmt(trial.frequency_hz),
         std::to_string(i % per_cell), std::to_string(trial.trial_seed),
         std::to_string(trial.frames.injected_frames),
         std::to_string(trial.frames.detected_frames),
         fmt(trial.detection_rate),
         std::to_string(trial.windows.true_positive),
         std::to_string(trial.windows.false_positive),
         std::to_string(trial.windows.true_negative),
         std::to_string(trial.windows.false_negative),
         fmt(trial.windows.true_positive_rate()),
         fmt(trial.windows.false_positive_rate()),
         fmt_optional(trial.inference_accuracy),
         fmt(trial.injection_rate_arbitration),
         fmt(trial.injection_rate_success),
         std::to_string(trial.injected_transmitted), fmt(trial.bus_load),
         std::to_string(trial.counters.windows_closed),
         std::to_string(trial.counters.windows_evaluated),
         std::to_string(trial.counters.alerts),
         latency ? fmt(util::to_seconds(*latency)) : std::string()});
  }
}

void CampaignReport::write_cells_csv(std::ostream& out) const {
  util::CsvWriter csv(
      out, {"detector", "scenario", "capture", "sweep_id", "rate_hz",
            "trials", "detection_rate", "tpr", "fpr", "precision", "f1",
            "inference_accuracy", "mean_injection_rate_arbitration",
            "mean_injection_rate_success", "mean_bus_load", "detected_trials",
            "mean_detection_latency_s", "auc"});
  for (const CampaignCell& cell : cells) {
    csv.write_row({cell.detector, scenario_field(cell.capture, cell.kind),
                   cell.capture,
                   sweep_field(cell.sweep_id), fmt(cell.frequency_hz),
                   std::to_string(cell.trials), fmt(cell.detection_rate),
                   fmt(cell.tpr), fmt(cell.fpr), fmt(cell.precision),
                   fmt(cell.f1), fmt_optional(cell.inference_accuracy),
                   fmt(cell.mean_injection_rate_arbitration),
                   fmt(cell.mean_injection_rate_success),
                   fmt(cell.mean_bus_load),
                   std::to_string(cell.detected_trials),
                   fmt_optional(cell.mean_latency_seconds), fmt(cell.auc)});
  }
}

void CampaignReport::write_roc_csv(std::ostream& out) const {
  util::CsvWriter csv(out, {"detector", "scenario", "capture", "sweep_id",
                            "rate_hz", "scale", "tp", "fp", "tn", "fn",
                            "tpr", "fpr"});
  for (const CampaignCell& cell : cells) {
    for (const RocPoint& point : cell.roc) {
      csv.write_row({cell.detector, scenario_field(cell.capture, cell.kind),
                     cell.capture,
                     sweep_field(cell.sweep_id), fmt(cell.frequency_hz),
                     fmt(point.scale),
                     std::to_string(point.windows.true_positive),
                     std::to_string(point.windows.false_positive),
                     std::to_string(point.windows.true_negative),
                     std::to_string(point.windows.false_negative),
                     fmt(point.tpr), fmt(point.fpr)});
    }
  }
}

void CampaignReport::write_json(std::ostream& out) const {
  out << "{\n\"spec\": " << spec.to_json() << ",\n\"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out << (i ? ",\n" : "") << json_cell(cells[i]);
  }
  out << "\n],\n\"trials\": [\n";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    out << (i ? ",\n" : "") << json_trial(trials[i]);
  }
  out << "\n]\n}\n";
}

void CampaignReport::write_all(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  const auto open = [&](const char* file) {
    std::ofstream out(dir / file);
    if (!out) {
      throw std::runtime_error("cannot write " + (dir / file).string());
    }
    return out;
  };
  {
    std::ofstream out = open("trials.csv");
    write_trials_csv(out);
  }
  {
    std::ofstream out = open("cells.csv");
    write_cells_csv(out);
  }
  {
    std::ofstream out = open("roc.csv");
    write_roc_csv(out);
  }
  {
    std::ofstream out = open("report.json");
    write_json(out);
  }
}

}  // namespace canids::campaign
