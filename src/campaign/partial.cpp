#include "campaign/partial.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/binary_io.h"

namespace canids::campaign {

namespace {

/// Cap on one row's vector counts (observations, planned IDs, intervals):
/// a corrupted count must fail fast instead of attempting a huge reserve.
constexpr std::uint64_t kMaxElementCount = 1ull << 30;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("campaign partial: " + what);
}

std::uint64_t read_count(util::BinaryReader& reader, const char* what) {
  const std::uint64_t count = reader.u64(what);
  if (count > kMaxElementCount) {
    reader.fail(std::string("implausible ") + what);
  }
  return count;
}

// ---- trial serialization ---------------------------------------------------
// Every InstrumentedTrial field, in declaration order, so a merged report
// aggregates from exactly what the shard measured. Doubles travel as raw
// bit patterns: the merge must reproduce the single-process report's bytes.

void write_trial(util::BinaryWriter& out,
                 const metrics::InstrumentedTrial& trial) {
  out.str(trial.backend);
  out.str(scenario_token(trial.kind));
  out.u8(trial.single_id ? 1 : 0);
  if (trial.single_id) out.u32(*trial.single_id);
  out.str(trial.capture);
  out.f64(trial.frequency_hz);
  out.u64(trial.trial_seed);
  out.u64(trial.planned_ids.size());
  for (const std::uint32_t id : trial.planned_ids) out.u32(id);
  out.i64(trial.attack_start);
  out.i64(trial.attack_end);
  out.u64(trial.attack_intervals.size());
  for (const trace::LabelInterval& interval : trial.attack_intervals) {
    out.i64(interval.start);
    out.i64(interval.end);
  }
  out.u64(trial.frames.injected_frames);
  out.u64(trial.frames.detected_frames);
  out.u64(trial.windows.true_positive);
  out.u64(trial.windows.false_positive);
  out.u64(trial.windows.true_negative);
  out.u64(trial.windows.false_negative);
  out.f64(trial.detection_rate);
  out.u8(trial.inference_accuracy ? 1 : 0);
  if (trial.inference_accuracy) out.f64(*trial.inference_accuracy);
  out.f64(trial.inference_hit_sum);
  out.u64(trial.inference_windows);
  out.f64(trial.injection_rate_arbitration);
  out.f64(trial.injection_rate_success);
  out.u64(trial.injected_transmitted);
  out.f64(trial.bus_load);
  out.u64(trial.observations.size());
  for (const metrics::WindowObservation& window : trial.observations) {
    out.i64(window.start);
    out.i64(window.end);
    out.u64(window.frames);
    out.u64(window.injected);
    out.u8(window.evaluated ? 1 : 0);
    out.u8(window.alert ? 1 : 0);
    out.f64(window.metric);
    out.f64(window.threshold);
  }
  out.u64(trial.counters.frames);
  out.u64(trial.counters.windows_closed);
  out.u64(trial.counters.windows_evaluated);
  out.u64(trial.counters.alerts);
  out.u64(trial.counters.parse_errors);
  out.u64(trial.counters.dropped_frames);
}

metrics::InstrumentedTrial read_trial(util::BinaryReader& in) {
  metrics::InstrumentedTrial trial;
  trial.backend = in.str("trial backend");
  const std::string token = in.str("trial scenario token");
  const auto kind = scenario_from_token(token);
  if (!kind) in.fail("unknown scenario token '" + token + "'");
  trial.kind = *kind;
  if (in.boolean("trial sweep-id flag")) {
    trial.single_id = in.u32("trial sweep id");
  }
  trial.capture = in.str("trial capture name");
  trial.frequency_hz = in.f64("trial frequency");
  trial.trial_seed = in.u64("trial seed");
  const std::uint64_t planned = read_count(in, "planned-id count");
  trial.planned_ids.reserve(static_cast<std::size_t>(planned));
  for (std::uint64_t i = 0; i < planned; ++i) {
    trial.planned_ids.push_back(in.u32("planned id"));
  }
  trial.attack_start = in.i64("attack start");
  trial.attack_end = in.i64("attack end");
  const std::uint64_t intervals = read_count(in, "attack-interval count");
  trial.attack_intervals.reserve(static_cast<std::size_t>(intervals));
  for (std::uint64_t i = 0; i < intervals; ++i) {
    trace::LabelInterval interval;
    interval.start = in.i64("attack interval start");
    interval.end = in.i64("attack interval end");
    trial.attack_intervals.push_back(interval);
  }
  trial.frames.injected_frames = in.u64("injected frames");
  trial.frames.detected_frames = in.u64("detected frames");
  trial.windows.true_positive = in.u64("true positives");
  trial.windows.false_positive = in.u64("false positives");
  trial.windows.true_negative = in.u64("true negatives");
  trial.windows.false_negative = in.u64("false negatives");
  trial.detection_rate = in.f64("detection rate");
  if (in.boolean("inference-accuracy flag")) {
    trial.inference_accuracy = in.f64("inference accuracy");
  }
  trial.inference_hit_sum = in.f64("inference hit sum");
  trial.inference_windows = in.u64("inference windows");
  trial.injection_rate_arbitration = in.f64("injection rate (arb)");
  trial.injection_rate_success = in.f64("injection rate (success)");
  trial.injected_transmitted = in.u64("transmitted count");
  trial.bus_load = in.f64("bus load");
  const std::uint64_t observations = read_count(in, "observation count");
  trial.observations.reserve(static_cast<std::size_t>(observations));
  for (std::uint64_t i = 0; i < observations; ++i) {
    metrics::WindowObservation window;
    window.start = in.i64("window start");
    window.end = in.i64("window end");
    window.frames = in.u64("window frames");
    window.injected = in.u64("window injected");
    window.evaluated = in.boolean("window evaluated flag");
    window.alert = in.boolean("window alert flag");
    window.metric = in.f64("window metric");
    window.threshold = in.f64("window threshold");
    trial.observations.push_back(window);
  }
  trial.counters.frames = in.u64("counter frames");
  trial.counters.windows_closed = in.u64("counter windows closed");
  trial.counters.windows_evaluated = in.u64("counter windows evaluated");
  trial.counters.alerts = in.u64("counter alerts");
  trial.counters.parse_errors = in.u64("counter parse errors");
  trial.counters.dropped_frames = in.u64("counter dropped frames");
  return trial;
}

// ---- fingerprints ----------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& hash, std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
  fnv_bytes(hash, bytes, sizeof bytes);
}

void fnv_string(std::uint64_t& hash, std::string_view s) {
  fnv_u64(hash, s.size());  // length-prefixed: "ab","c" != "a","bc"
  fnv_bytes(hash, s.data(), s.size());
}

}  // namespace

std::uint64_t fingerprint_spec(const CampaignSpec& spec) {
  std::uint64_t hash = kFnvOffset;
  fnv_string(hash, spec.to_json());
  return hash;
}

std::uint64_t fingerprint_plan(const std::vector<TrialPlan>& plan) {
  std::uint64_t hash = kFnvOffset;
  fnv_u64(hash, plan.size());
  for (const TrialPlan& trial : plan) {
    fnv_u64(hash, trial.index);
    fnv_string(hash, trial.detector);
    fnv_string(hash, scenario_token(trial.kind));
    fnv_u64(hash, trial.sweep_id ? 1 : 0);
    fnv_u64(hash, trial.sweep_id ? *trial.sweep_id : 0);
    fnv_string(hash, trial.capture);
    fnv_u64(hash, std::bit_cast<std::uint64_t>(trial.frequency_hz));
    fnv_u64(hash, static_cast<std::uint64_t>(trial.seed_index));
    fnv_u64(hash, trial.trial_seed);
  }
  return hash;
}

void PartialReport::save(std::ostream& out) const {
  const std::vector<TrialPlan> plan = spec.plan();
  util::BinaryWriter writer(out);
  writer.bytes(kPartialMagic);
  writer.u32(kPartialFormatVersion);
  writer.u32(shard.index);
  writer.u32(shard.count);
  writer.u64(fingerprint_spec(spec));
  writer.u64(fingerprint_plan(plan));
  writer.u64(plan.size());
  writer.str(spec.to_json());
  writer.u64(rows.size());
  for (const Row& row : rows) {
    writer.u64(row.plan_index);
    write_trial(writer, row.trial);
  }
  if (!out) fail("write failed");
}

void PartialReport::save_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot write " + path.string());
  save(out);
}

PartialReport PartialReport::load(std::istream& in) {
  util::BinaryReader reader(in, "campaign partial");
  char magic[8];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      std::string_view(magic, sizeof magic) != kPartialMagic) {
    fail("bad magic (not a canids partial report)");
  }
  const std::uint32_t version = reader.u32("version field");
  if (version != kPartialFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads version " +
         std::to_string(kPartialFormatVersion) + ")");
  }

  PartialReport partial;
  partial.shard.index = reader.u32("shard index");
  partial.shard.count = reader.u32("shard count");
  if (partial.shard.count < 1 || partial.shard.index >= partial.shard.count) {
    fail("shard index " + std::to_string(partial.shard.index) +
         " outside shard count " + std::to_string(partial.shard.count));
  }
  const std::uint64_t spec_hash = reader.u64("spec fingerprint");
  const std::uint64_t plan_hash = reader.u64("plan fingerprint");
  const std::uint64_t plan_size = reader.u64("plan trial count");
  const std::string spec_json = reader.str("spec JSON");
  try {
    partial.spec = CampaignSpec::from_json(spec_json);
  } catch (const std::exception& e) {
    fail(std::string("embedded spec does not parse: ") + e.what());
  }
  if (fingerprint_spec(partial.spec) != spec_hash) {
    fail("spec fingerprint mismatch (tampered or foreign file)");
  }
  const std::vector<TrialPlan> plan = partial.spec.plan();
  if (plan.size() != plan_size || fingerprint_plan(plan) != plan_hash) {
    fail("plan fingerprint mismatch — this build plans the campaign "
         "differently than the one that wrote the shard");
  }

  const std::uint64_t row_count = read_count(reader, "row count");
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (partial.shard.covers(i)) ++expected;
  }
  if (row_count != expected) {
    fail("shard " + partial.shard.to_string() + " must carry " +
         std::to_string(expected) + " trial rows, file has " +
         std::to_string(row_count));
  }
  partial.rows.reserve(static_cast<std::size_t>(row_count));
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < row_count; ++i) {
    Row row;
    row.plan_index = reader.u64("row plan index");
    if (row.plan_index >= plan.size()) fail("row plan index out of range");
    if (i > 0 && row.plan_index <= previous) {
      fail("rows out of canonical order");
    }
    if (!partial.shard.covers(row.plan_index)) {
      fail("row " + std::to_string(row.plan_index) +
           " does not belong to shard " + partial.shard.to_string());
    }
    row.trial = read_trial(reader);
    const TrialPlan& planned = plan[static_cast<std::size_t>(row.plan_index)];
    if (row.trial.backend != planned.detector ||
        row.trial.trial_seed != planned.trial_seed ||
        row.trial.capture != planned.capture) {
      fail("row " + std::to_string(row.plan_index) +
           " disagrees with the plan's trial coordinates");
    }
    previous = row.plan_index;
    partial.rows.push_back(std::move(row));
  }
  reader.expect_eof("trailing bytes after the last row");
  return partial;
}

PartialReport PartialReport::load_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read " + path.string());
  return load(in);
}

CampaignReport merge_partials(std::vector<PartialReport> partials) {
  if (partials.empty()) fail("nothing to merge");

  const std::uint64_t spec_hash = fingerprint_spec(partials.front().spec);
  const std::uint64_t plan_hash =
      fingerprint_plan(partials.front().spec.plan());
  const std::uint32_t count = partials.front().shard.count;
  for (const PartialReport& partial : partials) {
    if (fingerprint_spec(partial.spec) != spec_hash) {
      fail("shard " + partial.shard.to_string() +
           " belongs to a different campaign spec");
    }
    if (fingerprint_plan(partial.spec.plan()) != plan_hash) {
      fail("shard " + partial.shard.to_string() +
           " was planned differently (plan fingerprint mismatch)");
    }
    if (partial.shard.count != count) {
      fail("shard " + partial.shard.to_string() + " disagrees on the shard "
           "count (expected /" + std::to_string(count) + ")");
    }
  }

  std::vector<bool> present(count, false);
  for (const PartialReport& partial : partials) {
    if (present[partial.shard.index]) {
      fail("duplicate shard " + partial.shard.to_string());
    }
    present[partial.shard.index] = true;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!present[i]) {
      fail("missing shard " + ShardSelector{i, count}.to_string());
    }
  }

  CampaignSpec spec = partials.front().spec;
  spec.shard.reset();  // the merged report is the unsharded campaign
  const std::size_t trial_count = spec.plan().size();
  std::vector<metrics::InstrumentedTrial> trials(trial_count);
  std::vector<bool> filled(trial_count, false);
  for (PartialReport& partial : partials) {
    for (PartialReport::Row& row : partial.rows) {
      const auto index = static_cast<std::size_t>(row.plan_index);
      // load() already proved per-shard ownership and ordering; this is
      // the cross-shard belt-and-braces that every slot lands exactly once.
      if (filled[index]) {
        fail("trial " + std::to_string(index) + " supplied twice");
      }
      filled[index] = true;
      trials[index] = std::move(row.trial);
    }
  }
  for (std::size_t i = 0; i < trial_count; ++i) {
    if (!filled[i]) fail("trial " + std::to_string(i) + " missing after merge");
  }
  return make_report(std::move(spec), std::move(trials));
}

}  // namespace canids::campaign
