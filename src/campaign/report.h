// Campaign results: per-trial rows, per-cell aggregates with ROC/AUC and
// window-granularity detection latency, and machine-readable emitters
// (CSV for spreadsheets/plots, JSON for pipelines). Aggregation is pure
// and sequential over the canonical trial order, so a report's bytes are
// identical no matter how many workers produced the trials.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/spec.h"
#include "metrics/confusion.h"
#include "metrics/experiment.h"

namespace canids::campaign {

/// One operating point of a cell's ROC curve: every window observation of
/// the cell re-scored with the detector threshold multiplied by `scale`
/// (1 = the backend's native sensitivity).
struct RocPoint {
  double scale = 0.0;
  metrics::WindowConfusion windows;
  double tpr = 0.0;
  double fpr = 0.0;
};

/// Trapezoidal area under the (fpr, tpr) points, anchored at (0,0)/(1,1).
[[nodiscard]] double auc_of(const std::vector<RocPoint>& points);

/// Aggregate of one campaign cell — detector × scenario-or-ID × rate,
/// across every seed.
struct CampaignCell {
  std::string detector;
  attacks::ScenarioKind kind{};
  std::optional<std::uint32_t> sweep_id;
  /// Capture-replay cells: the recorded file this cell scored (one trial
  /// per cell — a recording replays deterministically). Empty otherwise.
  std::string capture;
  double frequency_hz = 0.0;
  int trials = 0;

  metrics::FrameDetection frames;    ///< frame-level D_r accounting
  metrics::WindowConfusion windows;  ///< at the native threshold
  double detection_rate = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
  std::optional<double> inference_accuracy;
  double mean_injection_rate_arbitration = 0.0;
  double mean_injection_rate_success = 0.0;
  double mean_bus_load = 0.0;

  /// Trials whose attack was flagged at all (the latency denominators).
  int detected_trials = 0;
  /// Mean window-granularity detection latency over detected trials.
  std::optional<double> mean_latency_seconds;

  std::vector<RocPoint> roc;  ///< spec's threshold_scales order
  double auc = 0.0;
};

/// Scenario-level rollup of one detector across every rate — the Table I
/// aggregation (frame-weighted over all trials of the scenario).
struct ScenarioRollup {
  attacks::ScenarioKind kind{};
  std::size_t trials = 0;
  metrics::FrameDetection frames;
  metrics::WindowConfusion windows;
  double detection_rate = 0.0;
  double false_positive_rate = 0.0;
  double mean_injection_rate = 0.0;
  std::optional<double> inference_accuracy;
};

struct CampaignReport {
  CampaignSpec spec;
  std::vector<metrics::InstrumentedTrial> trials;  ///< canonical plan order
  std::vector<CampaignCell> cells;                 ///< canonical cell order

  [[nodiscard]] ScenarioRollup rollup(std::string_view detector,
                                      attacks::ScenarioKind kind) const;

  void write_trials_csv(std::ostream& out) const;
  void write_cells_csv(std::ostream& out) const;
  void write_roc_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;

  /// Write trials.csv, cells.csv, roc.csv, and report.json into `dir`
  /// (created if missing).
  void write_all(const std::filesystem::path& dir) const;
};

/// Aggregate trials (in canonical plan order, as CampaignRunner returns
/// them) into the full report. Pure and deterministic.
[[nodiscard]] CampaignReport make_report(
    CampaignSpec spec, std::vector<metrics::InstrumentedTrial> trials);

}  // namespace canids::campaign
