#include "campaign/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/time.h"

namespace canids::campaign {

namespace {

// ---- minimal JSON ----------------------------------------------------------
// Campaign specs are flat JSON objects of scalars and scalar arrays; this
// parser covers the full JSON value grammar anyway so spec files written by
// other tools round-trip. No dependency, ~100 lines, strict (trailing
// garbage and malformed literals throw).

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] Json parse() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("campaign spec JSON: " + what +
                                " (at offset " + std::to_string(pos_) + ")");
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
          // UTF-8 encode (specs are ASCII in practice; stay correct anyway).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      Json v;
      v.type = Json::Type::kNumber;
      v.number = std::stod(token, &used);
      if (used != token.size() || token.empty()) throw std::invalid_argument("");
      return v;
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string json_number(double value) {
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

[[noreturn]] void bad_key(const std::string& key, const char* expected) {
  throw std::invalid_argument("campaign spec: key '" + key + "' expects " +
                              expected);
}

double as_number(const std::string& key, const Json& v) {
  if (v.type != Json::Type::kNumber) bad_key(key, "a number");
  return v.number;
}

int as_int(const std::string& key, const Json& v) {
  const double n = as_number(key, v);
  if (n != std::floor(n)) bad_key(key, "an integer");
  return static_cast<int>(n);
}

bool as_bool(const std::string& key, const Json& v) {
  if (v.type != Json::Type::kBool) bad_key(key, "a boolean");
  return v.boolean;
}

std::string as_string(const std::string& key, const Json& v) {
  if (v.type != Json::Type::kString) bad_key(key, "a string");
  return v.string;
}

std::vector<double> as_number_array(const std::string& key, const Json& v) {
  if (v.type != Json::Type::kArray) bad_key(key, "an array of numbers");
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const Json& item : v.array) out.push_back(as_number(key, item));
  return out;
}

std::vector<std::string> as_string_array(const std::string& key,
                                         const Json& v) {
  if (v.type != Json::Type::kArray) bad_key(key, "an array of strings");
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const Json& item : v.array) out.push_back(as_string(key, item));
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters (\b, \f, , ...) would make
          // the emitted report.json unparseable if passed through raw.
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

ShardSelector ShardSelector::parse(std::string_view text) {
  const auto fail = [&] {
    throw std::invalid_argument(
        "shard selector '" + std::string(text) +
        "' must be I/N with 1 <= I <= N (e.g. --shard 2/3)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) fail();
  const auto parse_field = [&](std::string_view field) -> std::uint32_t {
    if (field.empty() || field.size() > 9) fail();
    std::uint64_t value = 0;
    for (const char c : field) {
      if (c < '0' || c > '9') fail();
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return static_cast<std::uint32_t>(value);
  };
  const std::uint32_t index = parse_field(text.substr(0, slash));
  const std::uint32_t count = parse_field(text.substr(slash + 1));
  if (index < 1 || index > count) fail();
  return ShardSelector{index - 1, count};
}

std::string ShardSelector::to_string() const {
  return std::to_string(index + 1) + "/" + std::to_string(count);
}

std::optional<attacks::ScenarioKind> scenario_from_token(
    std::string_view token) {
  for (const attacks::ScenarioKind kind : attacks::kAllScenarios) {
    if (scenario_token(kind) == token) return kind;
  }
  return std::nullopt;
}

std::vector<double> CampaignSpec::default_threshold_scales() {
  return {0.0, 0.1, 0.2,  0.3, 0.4,  0.5, 0.6, 0.7, 0.8, 0.9,  1.0,
          1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0};
}

CampaignSpec CampaignSpec::smoke() {
  CampaignSpec spec;
  spec.name = "smoke";
  spec.detectors = {"bit-entropy", "symbol-entropy"};
  spec.scenarios = {attacks::ScenarioKind::kSingle,
                    attacks::ScenarioKind::kFlood};
  spec.rates_hz = {100.0, 20.0};
  spec.seeds = 1;
  spec.experiment.training_windows = 10;
  spec.experiment.clean_lead_in = 2 * util::kSecond;
  spec.experiment.attack_duration = 6 * util::kSecond;
  return spec;
}

std::size_t CampaignSpec::trial_count() const noexcept {
  if (capture_mode()) return detectors.size() * captures.size();
  const std::size_t axis =
      sweep_ids.empty() ? scenarios.size() : sweep_ids.size();
  return detectors.size() * axis * rates_hz.size() *
         static_cast<std::size_t>(seeds > 0 ? seeds : 0);
}

void CampaignSpec::validate() const {
  if (detectors.empty()) {
    throw std::invalid_argument("campaign spec: no detectors");
  }
  if (!template_path.empty() && !model_path.empty()) {
    throw std::invalid_argument(
        "campaign spec: template_path and model_path are mutually "
        "exclusive — the bundle already carries the golden template");
  }
  if (capture_mode()) {
    // The synthetic-grid axes carry no meaning over recorded traffic;
    // captures themselves are validated when the runner resolves the
    // directory (a spec file may leave the list empty).
    if (capture_dir.empty()) {
      // Captures without a directory would resolve against the process
      // CWD — including the default labels.csv path, which could pick up
      // an unrelated file as ground truth.
      throw std::invalid_argument(
          "campaign spec: captures require capture_dir");
    }
    for (const std::string& capture : captures) {
      if (capture.empty()) {
        throw std::invalid_argument("campaign spec: empty capture name");
      }
    }
  } else {
    if (scenarios.empty() && sweep_ids.empty()) {
      throw std::invalid_argument("campaign spec: no scenarios or sweep IDs");
    }
    if (rates_hz.empty()) {
      throw std::invalid_argument("campaign spec: no injection rates");
    }
    for (const double rate : rates_hz) {
      if (!(rate > 0.0)) {
        throw std::invalid_argument("campaign spec: rates must be positive");
      }
    }
    if (seeds < 1) {
      throw std::invalid_argument("campaign spec: seeds must be >= 1");
    }
  }
  if (threshold_scales.empty()) {
    throw std::invalid_argument("campaign spec: no threshold scales");
  }
  for (const double scale : threshold_scales) {
    if (scale < 0.0) {
      throw std::invalid_argument(
          "campaign spec: threshold scales must be >= 0");
    }
  }
  if (workers < 0) {
    throw std::invalid_argument("campaign spec: workers must be >= 0");
  }
  if (shard && (shard->count < 1 || shard->index >= shard->count)) {
    throw std::invalid_argument(
        "campaign spec: shard index must lie inside the shard count");
  }
  // The experiment knobs a spec (or CLI override) can reach; anything
  // negative here would place the attack at negative time or spin the
  // training loop forever, so reject it before a runner is built.
  if (experiment.training_windows < 2) {
    throw std::invalid_argument(
        "campaign spec: training_windows must be >= 2");
  }
  if (experiment.clean_lead_in < 0) {
    throw std::invalid_argument("campaign spec: lead-in must be >= 0");
  }
  if (experiment.attack_duration <= 0) {
    throw std::invalid_argument(
        "campaign spec: attack duration must be > 0");
  }
  if (experiment.pipeline.window.duration <= 0) {
    throw std::invalid_argument(
        "campaign spec: window duration must be > 0");
  }
}

std::vector<TrialPlan> CampaignSpec::plan() const {
  validate();
  std::vector<TrialPlan> plans;
  plans.reserve(trial_count());
  if (capture_mode()) {
    if (captures.empty()) {
      throw std::invalid_argument(
          "campaign spec: capture mode but no captures resolved — point "
          "capture_dir at a directory with trace files");
    }
    // Captures replay deterministically, so one trial per detector x
    // capture; the trial seed is the capture index (stable under
    // re-ordering of the detector axis).
    for (const std::string& detector : detectors) {
      for (std::size_t c = 0; c < captures.size(); ++c) {
        TrialPlan trial;
        trial.index = plans.size();
        trial.detector = detector;
        trial.capture = captures[c];
        trial.trial_seed = c;
        plans.push_back(std::move(trial));
      }
    }
    return plans;
  }
  const bool sweep = !sweep_ids.empty();
  const std::size_t axis = sweep ? sweep_ids.size() : scenarios.size();
  for (const std::string& detector : detectors) {
    for (std::size_t a = 0; a < axis; ++a) {
      for (std::size_t r = 0; r < rates_hz.size(); ++r) {
        for (int s = 0; s < seeds; ++s) {
          TrialPlan trial;
          trial.index = plans.size();
          trial.detector = detector;
          trial.frequency_hz = rates_hz[r];
          trial.seed_index = s;
          if (sweep) {
            // Per-identifier counter, matching the historic Fig. 3 sweep
            // (id-major, then rate, then repeat).
            trial.kind = attacks::ScenarioKind::kSingle;
            trial.sweep_id = sweep_ids[a];
            trial.trial_seed =
                (static_cast<std::uint64_t>(a) * rates_hz.size() + r) *
                    static_cast<std::uint64_t>(seeds) +
                static_cast<std::uint64_t>(s);
          } else {
            // Rate-major counter per scenario, matching the historic
            // run_scenario trial ordering (Table I).
            trial.kind = scenarios[a];
            trial.trial_seed =
                static_cast<std::uint64_t>(r) *
                    static_cast<std::uint64_t>(seeds) +
                static_cast<std::uint64_t>(s);
          }
          plans.push_back(std::move(trial));
        }
      }
    }
  }
  return plans;
}

std::vector<TrialPlan> CampaignSpec::sharded_plan() const {
  std::vector<TrialPlan> full = plan();
  if (!shard) return full;
  std::vector<TrialPlan> sliced;
  sliced.reserve(full.size() / shard->count + 1);
  for (TrialPlan& trial : full) {
    if (shard->covers(trial.index)) sliced.push_back(std::move(trial));
  }
  return sliced;
}

CampaignSpec CampaignSpec::from_json(std::string_view text) {
  const Json root = JsonParser(text).parse();
  if (root.type != Json::Type::kObject) {
    throw std::invalid_argument("campaign spec: top level must be an object");
  }

  CampaignSpec spec;
  for (const auto& [key, value] : root.object) {
    if (key == "name") {
      spec.name = as_string(key, value);
    } else if (key == "detectors") {
      spec.detectors = as_string_array(key, value);
    } else if (key == "scenarios") {
      spec.scenarios.clear();
      for (const std::string& token : as_string_array(key, value)) {
        const auto kind = scenario_from_token(token);
        if (!kind) {
          throw std::invalid_argument(
              "campaign spec: unknown scenario '" + token +
              "' (flood|single|multi2|multi3|multi4|weak)");
        }
        spec.scenarios.push_back(*kind);
      }
    } else if (key == "sweep_ids") {
      spec.sweep_ids.clear();
      for (const double id : as_number_array(key, value)) {
        if (id < 0 || id != std::floor(id) || id > 4294967295.0) {
          bad_key(key, "identifier values (integers < 2^32)");
        }
        spec.sweep_ids.push_back(static_cast<std::uint32_t>(id));
      }
    } else if (key == "rates_hz") {
      spec.rates_hz = as_number_array(key, value);
    } else if (key == "seeds") {
      spec.seeds = as_int(key, value);
    } else if (key == "seed") {
      // Doubles hold integers exactly only up to 2^53; a silently rounded
      // seed would be a different campaign than the file says.
      const double seed = as_number(key, value);
      if (seed < 0 || seed != std::floor(seed) || seed > 9007199254740992.0) {
        bad_key(key, "a non-negative integer <= 2^53");
      }
      spec.experiment.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "training_windows") {
      const int windows = as_int(key, value);
      if (windows < 2) bad_key(key, "an integer >= 2");
      spec.experiment.training_windows = static_cast<std::size_t>(windows);
    } else if (key == "lead_in_seconds") {
      spec.experiment.clean_lead_in = util::from_seconds(as_number(key, value));
    } else if (key == "attack_seconds") {
      spec.experiment.attack_duration =
          util::from_seconds(as_number(key, value));
    } else if (key == "window_seconds") {
      spec.experiment.pipeline.window.duration =
          util::from_seconds(as_number(key, value));
    } else if (key == "alpha") {
      spec.experiment.pipeline.detector.alpha = as_number(key, value);
      spec.experiment.muter.alpha = as_number(key, value);
    } else if (key == "track_pairs") {
      spec.experiment.pipeline.window.track_pairs = as_bool(key, value);
    } else if (key == "period_scale") {
      spec.experiment.vehicle.period_scale = as_number(key, value);
    } else if (key == "template_path") {
      spec.template_path = as_string(key, value);
    } else if (key == "model_path") {
      spec.model_path = as_string(key, value);
    } else if (key == "capture_dir") {
      spec.capture_dir = as_string(key, value);
    } else if (key == "captures") {
      spec.captures = as_string_array(key, value);
    } else if (key == "labels_path") {
      spec.labels_path = as_string(key, value);
    } else if (key == "threshold_scales") {
      spec.threshold_scales = as_number_array(key, value);
    } else if (key == "workers") {
      spec.workers = as_int(key, value);
    } else {
      throw std::invalid_argument("campaign spec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

std::string CampaignSpec::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"" << json_escape(name) << "\",\n";
  out << "  \"detectors\": [";
  for (std::size_t i = 0; i < detectors.size(); ++i) {
    out << (i ? ", " : "") << '"' << json_escape(detectors[i]) << '"';
  }
  out << "],\n";
  if (sweep_ids.empty()) {
    out << "  \"scenarios\": [";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      out << (i ? ", " : "") << '"' << scenario_token(scenarios[i]) << '"';
    }
    out << "],\n";
  } else {
    out << "  \"sweep_ids\": [";
    for (std::size_t i = 0; i < sweep_ids.size(); ++i) {
      out << (i ? ", " : "") << sweep_ids[i];
    }
    out << "],\n";
  }
  out << "  \"rates_hz\": [";
  for (std::size_t i = 0; i < rates_hz.size(); ++i) {
    out << (i ? ", " : "") << json_number(rates_hz[i]);
  }
  out << "],\n";
  out << "  \"seeds\": " << seeds << ",\n";
  out << "  \"seed\": " << experiment.seed << ",\n";
  out << "  \"training_windows\": " << experiment.training_windows << ",\n";
  out << "  \"lead_in_seconds\": "
      << json_number(util::to_seconds(experiment.clean_lead_in)) << ",\n";
  out << "  \"attack_seconds\": "
      << json_number(util::to_seconds(experiment.attack_duration)) << ",\n";
  out << "  \"window_seconds\": "
      << json_number(util::to_seconds(experiment.pipeline.window.duration))
      << ",\n";
  out << "  \"alpha\": " << json_number(experiment.pipeline.detector.alpha)
      << ",\n";
  out << "  \"track_pairs\": "
      << (experiment.pipeline.window.track_pairs ? "true" : "false") << ",\n";
  out << "  \"period_scale\": " << json_number(experiment.vehicle.period_scale)
      << ",\n";
  // `template_path`/`model_path` are deliberately NOT serialized: like
  // `workers` below, where the models came from is an execution knob, and
  // a bundle cold-start must produce a byte-identical report to the
  // train-in-process run of the same spec. (from_json still accepts both
  // keys, so spec files can request a cold start.)
  if (capture_mode()) {
    out << "  \"capture_dir\": \"" << json_escape(capture_dir) << "\",\n";
    out << "  \"captures\": [";
    for (std::size_t i = 0; i < captures.size(); ++i) {
      out << (i ? ", " : "") << '"' << json_escape(captures[i]) << '"';
    }
    out << "],\n";
    if (!labels_path.empty()) {
      out << "  \"labels_path\": \"" << json_escape(labels_path) << "\",\n";
    }
  }
  // `workers` is deliberately NOT serialized: it is an execution knob (like
  // wall time), and report artifacts must stay byte-identical between
  // 1-worker and N-worker runs of the same spec.
  out << "  \"threshold_scales\": [";
  for (std::size_t i = 0; i < threshold_scales.size(); ++i) {
    out << (i ? ", " : "") << json_number(threshold_scales[i]);
  }
  out << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace canids::campaign
