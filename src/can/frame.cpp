#include "can/frame.h"

#include <algorithm>
#include <cstdio>

namespace canids::can {

std::string CanId::to_string() const {
  char buf[16];
  if (is_extended()) {
    std::snprintf(buf, sizeof buf, "%08X", raw_);
  } else {
    std::snprintf(buf, sizeof buf, "%03X", raw_);
  }
  return buf;
}

Frame Frame::data_frame(CanId id, std::span<const std::uint8_t> payload) {
  CANIDS_EXPECTS(payload.size() <= kMaxDataBytes);
  Frame f;
  f.id_ = id;
  f.remote_ = false;
  f.dlc_ = static_cast<std::uint8_t>(payload.size());
  std::copy(payload.begin(), payload.end(), f.data_.begin());
  return f;
}

Frame Frame::remote_frame(CanId id, std::uint8_t dlc) {
  CANIDS_EXPECTS(dlc <= kMaxDataBytes);
  Frame f;
  f.id_ = id;
  f.remote_ = true;
  f.dlc_ = dlc;
  return f;
}

std::string Frame::to_string() const {
  std::string out = id_.to_string();
  out.push_back('#');
  if (remote_) {
    out.push_back('R');
    out += std::to_string(static_cast<int>(dlc_));
    return out;
  }
  static constexpr char kHex[] = "0123456789ABCDEF";
  for (std::uint8_t i = 0; i < dlc_; ++i) {
    out.push_back(kHex[data_[i] >> 4]);
    out.push_back(kHex[data_[i] & 0xF]);
  }
  return out;
}

}  // namespace canids::can
