#include "can/arbitration.h"

#include <algorithm>

namespace canids::can {

namespace {
constexpr bool kDominant = false;
constexpr bool kRecessive = true;
}  // namespace

BitString arbitration_bits(const Frame& frame) {
  BitString bits;
  const CanId id = frame.id();
  if (!id.is_extended()) {
    bits.append_bits(id.raw(), kStdIdBits);
    bits.push_back(frame.is_remote() ? kRecessive : kDominant);  // RTR
    // The IDE bit is transmitted dominant by standard frames while an
    // extended frame with the same 11 leading bits sends recessive SRR/IDE,
    // so including it captures standard-beats-extended semantics.
    bits.push_back(kDominant);  // IDE
  } else {
    bits.append_bits(id.raw() >> 18, kStdIdBits);
    bits.push_back(kRecessive);  // SRR
    bits.push_back(kRecessive);  // IDE
    bits.append_bits(id.raw() & 0x3FFFFu, 18);
    bits.push_back(frame.is_remote() ? kRecessive : kDominant);  // RTR
  }
  return bits;
}

bool arbitration_wins(const Frame& a, const Frame& b) {
  const Frame contenders[] = {a, b};
  const ArbitrationResult result = arbitrate(contenders);
  return result.winner == 0 && result.tied_with_winner.empty();
}

ArbitrationResult arbitrate(std::span<const Frame> contenders) {
  CANIDS_EXPECTS(!contenders.empty());

  std::vector<BitString> fields;
  fields.reserve(contenders.size());
  std::size_t max_len = 0;
  for (const Frame& f : contenders) {
    fields.push_back(arbitration_bits(f));
    max_len = std::max(max_len, fields.back().size());
  }

  ArbitrationResult result;
  result.lost_at_bit.assign(contenders.size(), std::nullopt);

  std::vector<std::size_t> alive(contenders.size());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  for (std::size_t bit = 0; bit < max_len && alive.size() > 1; ++bit) {
    // The bus level is the wired-AND of all transmitters: dominant if any
    // alive contender sends dominant. A contender whose field is exhausted
    // has fully transmitted its arbitration sequence; model its next level
    // as dominant (a data frame's IDE/r0 are dominant), which also gives
    // shorter-field-wins for prefix relationships.
    bool bus_dominant = false;
    for (std::size_t idx : alive) {
      const bool sent = bit < fields[idx].size() ? fields[idx][bit] : kDominant;
      if (sent == kDominant) {
        bus_dominant = true;
        break;
      }
    }
    if (!bus_dominant) continue;  // everyone recessive: no one drops out

    std::vector<std::size_t> still_alive;
    still_alive.reserve(alive.size());
    for (std::size_t idx : alive) {
      const bool sent = bit < fields[idx].size() ? fields[idx][bit] : kDominant;
      if (sent == kRecessive) {
        result.lost_at_bit[idx] = bit;
      } else {
        still_alive.push_back(idx);
      }
    }
    alive = std::move(still_alive);
  }

  // All remaining contenders transmitted identical arbitration fields.
  result.winner = alive.front();
  for (std::size_t i = 1; i < alive.size(); ++i) {
    result.tied_with_winner.push_back(alive[i]);
  }
  return result;
}

}  // namespace canids::can
