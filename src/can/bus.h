// Discrete-event CAN bus simulator.
//
// The simulator advances a nanosecond clock. Whenever the bus is idle it
// gathers every enabled node with a pending frame, runs bitwise arbitration
// (arbitration.h), lets the winner transmit for exactly the frame's on-wire
// duration (bitstream.h), delivers the frame to every listener, and applies
// the interframe space before the next round. Losers retry after the
// configured back-off, reproducing CAN's priority inversion — the physical
// mechanism behind the paper's injection-rate curve (Fig. 3).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "can/arbitration.h"
#include "can/bitstream.h"
#include "can/node.h"
#include "util/time.h"

namespace canids::can {

struct BusConfig {
  /// 125 kbit/s mid-speed CAN by default (the bus the paper measured);
  /// 500 kbit/s for high-speed CAN.
  std::uint32_t bitrate_bps = 125'000;
  /// Interframe space between consecutive frames (ISO: 3 bit times).
  int interframe_bits = 3;
  /// Back-off applied to arbitration losers before re-entering contention;
  /// the paper quotes "six clocks after the end of the last message".
  int retry_delay_bits = 6;
  /// Transceiver guard configuration applied to every node.
  TransceiverConfig transceiver;
};

struct BusStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t arbitration_rounds = 0;
  std::uint64_t contested_rounds = 0;  ///< rounds with >= 2 contenders
  std::uint64_t collisions = 0;        ///< identical-arbitration-field ties
  std::uint64_t error_frames = 0;      ///< transmissions destroyed by faults
  std::uint64_t bus_off_events = 0;    ///< nodes that reached bus-off
  util::TimeNs busy_time = 0;
  util::TimeNs observed_time = 0;

  /// Fraction of wall time the bus carried a frame.
  [[nodiscard]] double load() const noexcept {
    return observed_time == 0 ? 0.0
                              : static_cast<double>(busy_time) /
                                    static_cast<double>(observed_time);
  }
};

class BusSimulator {
 public:
  explicit BusSimulator(BusConfig config = {});

  /// Construct a node in place; the simulator owns it. Returns a reference
  /// valid for the simulator's lifetime.
  template <class NodeT, class... Args>
  NodeT& emplace_node(Args&&... args) {
    auto node = std::make_unique<NodeT>(std::forward<Args>(args)...);
    NodeT& ref = *node;
    add_node(std::move(node));
    return ref;
  }

  /// Transfer ownership of an existing node; returns its index.
  int add_node(std::unique_ptr<Node> node);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] Node& node(int index);
  [[nodiscard]] const Node& node(int index) const;

  /// Find a node index by name; -1 when absent.
  [[nodiscard]] int find_node(std::string_view name) const noexcept;

  /// Register an observer invoked for every frame that completes on the bus.
  void add_listener(std::function<void(const TimedFrame&)> listener);

  /// Install a transmission-fault hook: called for every frame about to
  /// complete; returning true destroys it (models induced bit errors, the
  /// bus-off attack of Cho & Shin that the paper cites as [10]). The
  /// transmitter's TEC rises by 8, the frame stays queued for retry, and
  /// the slot is consumed by an error frame. A node whose TEC exceeds 255
  /// goes bus-off and is disabled.
  void set_fault_hook(
      std::function<bool(const TimedFrame&)> hook) {
    fault_hook_ = std::move(hook);
  }

  /// Advance the simulation until the clock reaches `end`. May be called
  /// repeatedly; time is monotone across calls.
  void run_until(util::TimeNs end);

  /// Model a raw dominant bus-hold by `node_index` (the zero-flood DoS the
  /// paper's §III.B.1 discusses). The transceiver guard trips once the hold
  /// exceeds its timeout, after which the node is disabled and the bus
  /// released. Returns the duration the bus was actually held.
  util::TimeNs hold_bus_dominant(int node_index, util::TimeNs duration);

  [[nodiscard]] const BusConfig& config() const noexcept { return config_; }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] util::TimeNs now() const noexcept { return now_; }

  /// Duration of one bit on this bus.
  [[nodiscard]] util::TimeNs bit_time() const noexcept { return bit_time_; }

 private:
  /// Collect indices of nodes allowed to contend at `now_`.
  [[nodiscard]] std::vector<int> eligible_contenders() const;

  /// Earliest time any node could next become active (production or retry).
  [[nodiscard]] util::TimeNs next_activity_time() const;

  void deliver(const TimedFrame& frame);

  BusConfig config_;
  util::TimeNs bit_time_;
  util::TimeNs now_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::function<void(const TimedFrame&)>> listeners_;
  std::function<bool(const TimedFrame&)> fault_hook_;
  BusStats stats_;
};

}  // namespace canids::can
