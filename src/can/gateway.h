// Gateway-level filtering, the complementary defence the paper repeatedly
// leans on (§III.B, §V.D): a central gateway that (a) rate-limits each
// physical sender and (b) flags senders emitting bursts of high-priority
// identifiers never seen during commissioning. Flooding with changeable IDs
// evades per-ID filters but not this per-source view — which is why the
// paper argues sustained flooding "will be easily detected by the filter in
// the gateway" while short, targeted injections still need the entropy IDS.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "can/frame.h"
#include "util/time.h"

namespace canids::can {

struct GatewayConfig {
  /// Per-source frame budget per accounting window.
  double max_frames_per_second = 250.0;
  /// Distinct never-commissioned high-priority IDs from one source within
  /// a window before the source is flagged as a flooder.
  int novelty_threshold = 6;
  /// IDs strictly below this value count as high priority for novelty.
  std::uint32_t high_priority_ceiling = 0x100;
  /// Accounting window.
  util::TimeNs window = util::kSecond;
};

/// Per-source traffic police. Learn the commissioned ID set first, then
/// feed every delivered frame; sources that exceed the rate budget or spray
/// novel high-priority identifiers are flagged (and stay flagged).
class GatewayFilter {
 public:
  explicit GatewayFilter(GatewayConfig config = {});

  /// Commissioning phase: record a legitimate identifier.
  void learn(const CanId& id);
  /// Convenience: commission a whole ID pool.
  void learn_pool(const std::vector<std::uint32_t>& standard_ids);
  /// Freeze the commissioned set; observe() requires this.
  void finish_learning();

  struct Verdict {
    bool rate_exceeded = false;
    bool novelty_flagged = false;
  };

  /// Account one delivered frame. `frame.source_node` keys the per-source
  /// state (gateways know their physical ports the same way).
  Verdict observe(const TimedFrame& frame);

  [[nodiscard]] bool node_flagged(int source_node) const noexcept;
  [[nodiscard]] std::vector<int> flagged_nodes() const;
  [[nodiscard]] bool learning_finished() const noexcept { return frozen_; }
  [[nodiscard]] std::size_t commissioned_ids() const noexcept {
    return known_.size();
  }

 private:
  struct SourceState {
    util::TimeNs window_start = 0;
    std::uint64_t frames_in_window = 0;
    std::set<std::uint32_t> novel_high_priority;  // within current window
    bool flagged = false;
  };

  GatewayConfig config_;
  bool frozen_ = false;
  std::set<std::pair<std::uint32_t, bool>> known_;  // (raw, extended)
  std::unordered_map<int, SourceState> sources_;
};

}  // namespace canids::can
