#include "can/transceiver.h"

#include "can/bitstream.h"

namespace canids::can {

int longest_dominant_run(const Frame& frame) {
  const SerializedFrame serialized = serialize(frame);
  int longest = 0;
  int run = 0;
  for (std::size_t i = 0; i < serialized.stuffed.size(); ++i) {
    if (!serialized.stuffed[i]) {  // dominant
      ++run;
      if (run > longest) longest = run;
    } else {
      run = 0;
    }
  }
  return longest;
}

}  // namespace canids::can
