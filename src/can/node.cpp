#include "can/node.h"

#include <algorithm>

#include "util/contracts.h"

namespace canids::can {

Node::Node(std::string name, std::size_t queue_capacity,
           OverflowPolicy overflow)
    : name_(std::move(name)),
      queue_capacity_(queue_capacity),
      overflow_(overflow) {
  CANIDS_EXPECTS(queue_capacity_ > 0);
}

const Frame& Node::head() const {
  CANIDS_EXPECTS(!queue_.empty());
  return queue_.front();
}

void Node::pop_head() {
  CANIDS_EXPECTS(!queue_.empty());
  queue_.pop_front();
}

bool Node::submit(const Frame& frame) {
  ++stats_.generated;
  if (tx_filter_ && !tx_filter_(frame)) {
    ++stats_.blocked_by_filter;
    return false;
  }
  if (queue_.size() >= queue_capacity_) {
    if (overflow_ == OverflowPolicy::kDropNewest) {
      ++stats_.dropped_overflow;
      return false;
    }
    queue_.pop_front();
    ++stats_.dropped_overflow;
  }
  queue_.push_back(frame);
  return true;
}

// ---------------------------------------------------------------------------
// PeriodicSender

PeriodicSender::PeriodicSender(std::string name,
                               std::vector<MessageSpec> messages,
                               util::Rng rng, std::size_t queue_capacity)
    : Node(std::move(name), queue_capacity),
      specs_(std::move(messages)),
      rng_(rng) {
  CANIDS_EXPECTS(!specs_.empty());
  schedule_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    CANIDS_EXPECTS(specs_[i].period > 0);
    schedule_[i].next_due = specs_[i].offset;
    // Seed each sensor channel with a distinct but deterministic state.
    for (auto& byte : schedule_[i].sensor_state) {
      byte = static_cast<std::uint8_t>(rng_.below(256));
    }
  }
}

void PeriodicSender::produce(util::TimeNs now) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    ScheduleEntry& entry = schedule_[i];
    while (entry.next_due <= now) {
      submit(make_frame(i, entry.next_due));
      ++entry.sequence;
      const MessageSpec& spec = specs_[i];
      util::TimeNs step = spec.period;
      if (spec.jitter_fraction > 0.0) {
        const double jitter =
            rng_.uniform(-spec.jitter_fraction, spec.jitter_fraction);
        step += static_cast<util::TimeNs>(
            static_cast<double>(spec.period) * jitter);
        step = std::max<util::TimeNs>(step, 1);
      }
      entry.next_due += step;
    }
  }
}

util::TimeNs PeriodicSender::next_production_time() const {
  util::TimeNs earliest = util::kNever;
  for (const ScheduleEntry& entry : schedule_) {
    earliest = std::min(earliest, entry.next_due);
  }
  return earliest;
}

void PeriodicSender::scale_periods(double factor) {
  CANIDS_EXPECTS(factor > 0.0);
  for (MessageSpec& spec : specs_) {
    spec.period = std::max<util::TimeNs>(
        static_cast<util::TimeNs>(static_cast<double>(spec.period) * factor),
        1);
  }
}

Frame PeriodicSender::make_frame(std::size_t index, util::TimeNs now) {
  const MessageSpec& spec = specs_[index];
  ScheduleEntry& entry = schedule_[index];
  std::array<std::uint8_t, kMaxDataBytes> data{};

  switch (spec.payload) {
    case PayloadKind::kConstant:
      for (std::size_t b = 0; b < spec.dlc; ++b) {
        data[b] = static_cast<std::uint8_t>(0xA0 + b);
      }
      break;
    case PayloadKind::kCounter:
      data[0] = static_cast<std::uint8_t>(entry.sequence & 0xFF);
      for (std::size_t b = 1; b < spec.dlc; ++b) {
        data[b] = static_cast<std::uint8_t>(0x10 + b);
      }
      break;
    case PayloadKind::kSensor: {
      // Random-walk the stored sensor state so consecutive frames correlate
      // like real slowly-changing physical signals.
      for (std::size_t b = 0; b < spec.dlc; ++b) {
        const int delta = static_cast<int>(rng_.between(-2, 2));
        entry.sensor_state[b] =
            static_cast<std::uint8_t>(entry.sensor_state[b] + delta);
        data[b] = entry.sensor_state[b];
      }
      // Embed a coarse timestamp so long captures stay non-repeating.
      if (spec.dlc >= 2) {
        data[spec.dlc - 1] =
            static_cast<std::uint8_t>((now / util::kMillisecond) & 0xFF);
      }
      break;
    }
    case PayloadKind::kRandom:
      for (std::size_t b = 0; b < spec.dlc; ++b) {
        data[b] = static_cast<std::uint8_t>(rng_.below(256));
      }
      break;
  }
  return Frame::data_frame(spec.id,
                           std::span<const std::uint8_t>(data.data(), spec.dlc));
}

// ---------------------------------------------------------------------------
// ScriptedSender

ScriptedSender::ScriptedSender(
    std::string name, std::vector<std::pair<util::TimeNs, Frame>> script,
    std::size_t queue_capacity)
    : Node(std::move(name), queue_capacity), script_(std::move(script)) {
  std::stable_sort(script_.begin(), script_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
}

void ScriptedSender::produce(util::TimeNs now) {
  while (cursor_ < script_.size() && script_[cursor_].first <= now) {
    submit(script_[cursor_].second);
    ++cursor_;
  }
}

util::TimeNs ScriptedSender::next_production_time() const {
  return cursor_ < script_.size() ? script_[cursor_].first : util::kNever;
}

}  // namespace canids::can
