// CAN 2.0 frame model: identifiers (standard 11-bit and extended 29-bit),
// data frames and remote frames, with the bit accessors the entropy IDS
// builds on.
//
// Bit indexing convention (used consistently across the library and in all
// reports): bit 0 is the MOST significant identifier bit — the first bit on
// the wire and the one with the highest arbitration weight. Human-facing
// output prints 1-based positions ("Bit 1".."Bit 11") to match the paper.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/contracts.h"
#include "util/time.h"

namespace canids::can {

inline constexpr int kStdIdBits = 11;
inline constexpr int kExtIdBits = 29;
inline constexpr std::uint32_t kMaxStdId = 0x7FFu;
inline constexpr std::uint32_t kMaxExtId = 0x1FFF'FFFFu;
inline constexpr std::size_t kMaxDataBytes = 8;

/// Identifier format of a frame (CAN 2.0A standard vs 2.0B extended).
enum class IdFormat : std::uint8_t { kStandard, kExtended };

/// A CAN identifier plus its format. Immutable value type.
class CanId {
 public:
  /// Default: standard ID 0x000 (the most dominant identifier).
  constexpr CanId() noexcept = default;

  [[nodiscard]] static constexpr CanId standard(std::uint32_t raw) {
    CANIDS_EXPECTS(raw <= kMaxStdId);
    return CanId(raw, IdFormat::kStandard);
  }

  [[nodiscard]] static constexpr CanId extended(std::uint32_t raw) {
    CANIDS_EXPECTS(raw <= kMaxExtId);
    return CanId(raw, IdFormat::kExtended);
  }

  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr IdFormat format() const noexcept { return format_; }
  [[nodiscard]] constexpr bool is_extended() const noexcept {
    return format_ == IdFormat::kExtended;
  }

  /// Number of identifier bits (11 or 29).
  [[nodiscard]] constexpr int width() const noexcept {
    return is_extended() ? kExtIdBits : kStdIdBits;
  }

  /// MSB-first bit accessor: bit(0) is the highest-priority bit.
  [[nodiscard]] constexpr bool bit(int index) const {
    CANIDS_EXPECTS(index >= 0 && index < width());
    return ((raw_ >> (width() - 1 - index)) & 1u) != 0;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(CanId a, CanId b) noexcept {
    return a.raw_ == b.raw_ && a.format_ == b.format_;
  }
  /// Orders by (format, raw). NOTE: this is a container ordering, not the
  /// arbitration order; use can::arbitration_wins for bus semantics.
  friend constexpr auto operator<=>(CanId a, CanId b) noexcept {
    if (a.format_ != b.format_) return a.format_ <=> b.format_;
    return a.raw_ <=> b.raw_;
  }

 private:
  constexpr CanId(std::uint32_t raw, IdFormat format) noexcept
      : raw_(raw), format_(format) {}

  std::uint32_t raw_ = 0;
  IdFormat format_ = IdFormat::kStandard;
};

/// A CAN 2.0 frame (data or remote). Payload bytes beyond dlc() are zero.
class Frame {
 public:
  Frame() noexcept = default;

  /// Build a data frame; payload.size() must be <= 8.
  [[nodiscard]] static Frame data_frame(CanId id,
                                        std::span<const std::uint8_t> payload);

  /// Build a remote frame requesting `dlc` bytes.
  [[nodiscard]] static Frame remote_frame(CanId id, std::uint8_t dlc);

  [[nodiscard]] CanId id() const noexcept { return id_; }
  [[nodiscard]] bool is_remote() const noexcept { return remote_; }
  [[nodiscard]] std::uint8_t dlc() const noexcept { return dlc_; }

  /// Payload view limited to dlc() bytes; empty for remote frames.
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return remote_ ? std::span<const std::uint8_t>{}
                   : std::span<const std::uint8_t>(data_.data(), dlc_);
  }

  /// Mutable payload access for in-place signal updates.
  [[nodiscard]] std::span<std::uint8_t> mutable_payload() noexcept {
    return remote_ ? std::span<std::uint8_t>{}
                   : std::span<std::uint8_t>(data_.data(), dlc_);
  }

  /// Render like candump: "123#DEADBEEF" (or "123#R4" for remote frames).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Frame& a, const Frame& b) noexcept {
    return a.id_ == b.id_ && a.remote_ == b.remote_ && a.dlc_ == b.dlc_ &&
           a.data_ == b.data_;
  }

 private:
  CanId id_;
  bool remote_ = false;
  std::uint8_t dlc_ = 0;
  std::array<std::uint8_t, kMaxDataBytes> data_{};
};

/// A timestamped identifier — the compact item the batched scoring path
/// passes around (fleet queues, DetectorBackend::on_frames). The entropy
/// detectors only read the ID, so batches move 16 bytes per frame instead
/// of a whole TimedFrame.
struct TimedId {
  util::TimeNs timestamp = 0;
  CanId id;
};

/// A frame together with its (simulated or logged) completion timestamp and
/// the index of the transmitting node (kUnknownSource for parsed logs).
struct TimedFrame {
  util::TimeNs timestamp = 0;
  Frame frame;
  int source_node = kUnknownSource;

  static constexpr int kUnknownSource = -1;
};

}  // namespace canids::can
