// Bitwise CAN arbitration. When several nodes start transmitting in the same
// bit slot, each transmits its arbitration field (ID + RTR, plus SRR/IDE for
// extended frames) bit by bit; a node that sends recessive (1) while the bus
// carries dominant (0) loses and backs off. The entropy IDS exists precisely
// because injected frames must win this contest by choosing dominant ID bits.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "can/bitstream.h"
#include "can/frame.h"

namespace canids::can {

/// The exact bit sequence a frame transmits during arbitration. Standard
/// data frames additionally expose their dominant IDE bit, which is what
/// makes a standard frame beat an extended frame with the same leading
/// 11 ID bits.
[[nodiscard]] BitString arbitration_bits(const Frame& frame);

/// True if `a` wins arbitration against `b`. Identical arbitration fields
/// are a protocol violation (two nodes sending the same ID simultaneously);
/// this returns false for that case — use arbitrate() to detect ties.
[[nodiscard]] bool arbitration_wins(const Frame& a, const Frame& b);

/// Outcome of one arbitration round.
struct ArbitrationResult {
  /// Index into the contender span of the winning frame.
  std::size_t winner = 0;
  /// For each contender: the bit position at which it lost (transmitted
  /// recessive while the bus was dominant), or nullopt for the winner.
  std::vector<std::optional<std::size_t>> lost_at_bit;
  /// Indices of contenders whose arbitration field equals the winner's.
  /// Non-empty means a protocol-violating tie (counted as a collision by
  /// the bus simulator; the lowest index is kept as winner).
  std::vector<std::size_t> tied_with_winner;
};

/// Run one arbitration round over the contenders. Requires at least one.
[[nodiscard]] ArbitrationResult arbitrate(std::span<const Frame> contenders);

}  // namespace canids::can
