// Frame serialization to the physical bit sequence (Fig. 1 of the paper),
// including CRC computation and bit stuffing. Used for exact frame timing in
// the bus simulator and for the FIG1 reproduction bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "can/frame.h"
#include "util/time.h"

namespace canids::can {

/// A sequence of bus-level bits. true = recessive (logic 1),
/// false = dominant (logic 0), matching the CanId::bit convention.
class BitString {
 public:
  BitString() = default;
  explicit BitString(std::vector<bool> bits) : bits_(std::move(bits)) {}

  void push_back(bool bit) { bits_.push_back(bit); }

  /// Append `count` bits of `value`, MSB-first.
  void append_bits(std::uint32_t value, int count);

  /// Append `count` copies of `bit`.
  void append_repeated(bool bit, int count);

  void append(const BitString& other);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }
  [[nodiscard]] bool operator[](std::size_t i) const { return bits_[i]; }

  [[nodiscard]] const std::vector<bool>& bits() const noexcept { return bits_; }

  /// Render as '0'/'1' characters, MSB (first on the wire) first.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BitString&, const BitString&) = default;

 private:
  std::vector<bool> bits_;
};

/// Offsets of each field inside the unstuffed serialization, for reporting
/// and tests. All ranges are [begin, end).
struct FrameLayout {
  std::size_t sof_begin = 0;
  std::size_t arbitration_begin = 0;  ///< ID (+ SRR/IDE/18-bit tail) + RTR
  std::size_t control_begin = 0;      ///< IDE/r bits + DLC
  std::size_t data_begin = 0;
  std::size_t crc_begin = 0;          ///< 15 CRC bits
  std::size_t crc_delimiter = 0;
  std::size_t ack_slot = 0;
  std::size_t ack_delimiter = 0;
  std::size_t eof_begin = 0;          ///< 7 recessive bits
  std::size_t total_bits = 0;
};

/// Serialized frame: the unstuffed bits, the stuffed on-wire bits, and the
/// field layout. Stuffing applies from SOF through the end of the CRC
/// sequence; the delimiter/ACK/EOF tail has a fixed form.
struct SerializedFrame {
  BitString unstuffed;
  BitString stuffed;
  FrameLayout layout;
  std::uint16_t crc = 0;
  int stuff_bits_inserted = 0;
};

/// Serialize a frame, computing its CRC and applying bit stuffing.
[[nodiscard]] SerializedFrame serialize(const Frame& frame);

/// Insert a complementary stuff bit after every run of five identical bits.
/// Only the first `stuffable_bits` of the input are subject to stuffing (the
/// tail is copied verbatim), matching CAN's SOF..CRC stuffing region.
[[nodiscard]] BitString stuff(const BitString& raw, std::size_t stuffable_bits);

/// Remove stuff bits; the inverse of stuff(). Throws std::invalid_argument
/// if the input violates the stuffing rule (six identical consecutive bits
/// inside the stuffed region), which on a real bus is a stuff error.
[[nodiscard]] BitString destuff(const BitString& stuffed,
                                std::size_t stuffable_bits_expected);

/// Number of on-wire bits of the frame including stuff bits (SOF..EOF).
[[nodiscard]] std::size_t wire_bit_length(const Frame& frame);

/// Worst-case (maximum) wire length for a frame with `dlc` data bytes in the
/// given format; useful for bandwidth bounds.
[[nodiscard]] std::size_t max_wire_bit_length(IdFormat format, int dlc) noexcept;

/// Transmission duration at `bitrate_bps` (excluding interframe space).
[[nodiscard]] util::TimeNs transmit_duration(const Frame& frame,
                                             std::uint32_t bitrate_bps);

}  // namespace canids::can
