// Transceiver-level protection: the TXD dominant-timeout guard found in real
// CAN transceivers (e.g. NXP TJA104x). If a node keeps the bus dominant for
// longer than the timeout, the transceiver releases the bus and disables the
// transmitter. The paper (§III.B.1) notes this is why flooding with the
// all-dominant identifier 0x000 fails, pushing attackers toward changeable
// high-priority IDs — the scenario the entropy IDS is designed to catch.
#pragma once

#include <cstdint>

#include "can/frame.h"
#include "util/time.h"

namespace canids::can {

struct TransceiverConfig {
  /// Continuous dominant time after which the transmitter is cut off.
  /// Datasheet values are in the 0.3..4 ms range; default 0.8 ms.
  util::TimeNs dominant_timeout = 800 * util::kMicrosecond;
  /// Whether the guard is active at all.
  bool enabled = true;
};

/// Per-node dominant-timeout guard. The bus simulator reports every span of
/// time a node held the bus dominant; the guard trips (permanently, until
/// reset) when one continuous span exceeds the timeout.
class DominantTimeoutGuard {
 public:
  explicit DominantTimeoutGuard(TransceiverConfig config = {}) noexcept
      : config_(config) {}

  /// Report that the node drove the bus dominant for `duration` without
  /// interruption. Returns true if this span tripped the guard.
  bool on_dominant_span(util::TimeNs duration) noexcept {
    if (!config_.enabled || tripped_) return tripped_;
    if (duration > config_.dominant_timeout) tripped_ = true;
    if (duration > longest_span_) longest_span_ = duration;
    return tripped_;
  }

  [[nodiscard]] bool tripped() const noexcept { return tripped_; }
  [[nodiscard]] util::TimeNs longest_span() const noexcept {
    return longest_span_;
  }

  /// Re-enable the transmitter (models a transceiver reset).
  void reset() noexcept {
    tripped_ = false;
    longest_span_ = 0;
  }

  [[nodiscard]] const TransceiverConfig& config() const noexcept {
    return config_;
  }

 private:
  TransceiverConfig config_;
  bool tripped_ = false;
  util::TimeNs longest_span_ = 0;
};

/// Longest run of dominant bits in a frame's on-wire serialization. Used to
/// show that well-formed frames can never trip the guard (stuffing bounds
/// runs at 5) while a raw bus-hold does.
[[nodiscard]] int longest_dominant_run(const Frame& frame);

}  // namespace canids::can
