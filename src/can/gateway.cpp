#include "can/gateway.h"

#include "util/contracts.h"

namespace canids::can {

GatewayFilter::GatewayFilter(GatewayConfig config) : config_(config) {
  CANIDS_EXPECTS(config_.max_frames_per_second > 0.0);
  CANIDS_EXPECTS(config_.novelty_threshold >= 1);
  CANIDS_EXPECTS(config_.window > 0);
}

void GatewayFilter::learn(const CanId& id) {
  CANIDS_EXPECTS(!frozen_);
  known_.insert({id.raw(), id.is_extended()});
}

void GatewayFilter::learn_pool(const std::vector<std::uint32_t>& standard_ids) {
  for (std::uint32_t raw : standard_ids) {
    learn(CanId::standard(raw));
  }
}

void GatewayFilter::finish_learning() {
  CANIDS_EXPECTS(!frozen_);
  frozen_ = true;
}

GatewayFilter::Verdict GatewayFilter::observe(const TimedFrame& frame) {
  CANIDS_EXPECTS(frozen_);
  Verdict verdict;
  SourceState& state = sources_[frame.source_node];

  if (frame.timestamp >= state.window_start + config_.window) {
    state.window_start = frame.timestamp;
    state.frames_in_window = 0;
    state.novel_high_priority.clear();
  }

  ++state.frames_in_window;
  const double budget = config_.max_frames_per_second *
                        util::to_seconds(config_.window);
  if (static_cast<double>(state.frames_in_window) > budget) {
    verdict.rate_exceeded = true;
    state.flagged = true;
  }

  const CanId id = frame.frame.id();
  const bool known = known_.count({id.raw(), id.is_extended()}) > 0;
  if (!known && !id.is_extended() &&
      id.raw() < config_.high_priority_ceiling) {
    state.novel_high_priority.insert(id.raw());
    if (static_cast<int>(state.novel_high_priority.size()) >=
        config_.novelty_threshold) {
      verdict.novelty_flagged = true;
      state.flagged = true;
    }
  }
  return verdict;
}

bool GatewayFilter::node_flagged(int source_node) const noexcept {
  const auto it = sources_.find(source_node);
  return it != sources_.end() && it->second.flagged;
}

std::vector<int> GatewayFilter::flagged_nodes() const {
  std::vector<int> out;
  for (const auto& [node, state] : sources_) {
    if (state.flagged) out.push_back(node);
  }
  return out;
}

}  // namespace canids::can
