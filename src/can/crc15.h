// CRC-15/CAN as specified by ISO 11898-1: polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1 (0x4599), init 0,
// no reflection, no final XOR. The CRC is computed over the unstuffed bit
// sequence from SOF through the last data bit.
#pragma once

#include <cstdint>
#include <span>

namespace canids::can {

inline constexpr std::uint16_t kCrc15Polynomial = 0x4599;
inline constexpr std::uint16_t kCrc15Mask = 0x7FFF;

/// Incremental CRC-15 register (bit-at-a-time, as the hardware shifts).
class Crc15 {
 public:
  /// Shift in a single bit (MSB-first order on the wire).
  constexpr void push_bit(bool bit) noexcept {
    const bool crc_msb = (reg_ & 0x4000) != 0;
    reg_ = static_cast<std::uint16_t>((reg_ << 1) & kCrc15Mask);
    if (bit != crc_msb) reg_ ^= kCrc15Polynomial;
  }

  /// Shift in the bits of `value`, MSB-first, `count` bits wide.
  constexpr void push_bits(std::uint32_t value, int count) noexcept {
    for (int i = count - 1; i >= 0; --i) {
      push_bit(((value >> i) & 1u) != 0);
    }
  }

  /// Shift in whole bytes MSB-first.
  constexpr void push_bytes(std::span<const std::uint8_t> bytes) noexcept {
    for (std::uint8_t b : bytes) push_bits(b, 8);
  }

  [[nodiscard]] constexpr std::uint16_t value() const noexcept { return reg_; }

  constexpr void reset() noexcept { reg_ = 0; }

 private:
  std::uint16_t reg_ = 0;
};

/// One-shot CRC over a byte sequence (MSB-first per byte).
[[nodiscard]] std::uint16_t crc15_of(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace canids::can
