#include "can/bitstream.h"

#include <stdexcept>

#include "can/crc15.h"

namespace canids::can {

namespace {

constexpr bool kDominant = false;
constexpr bool kRecessive = true;

}  // namespace

void BitString::append_bits(std::uint32_t value, int count) {
  CANIDS_EXPECTS(count >= 0 && count <= 32);
  for (int i = count - 1; i >= 0; --i) {
    bits_.push_back(((value >> i) & 1u) != 0);
  }
}

void BitString::append_repeated(bool bit, int count) {
  CANIDS_EXPECTS(count >= 0);
  bits_.insert(bits_.end(), static_cast<std::size_t>(count), bit);
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

std::string BitString::to_string() const {
  std::string out;
  out.reserve(bits_.size());
  for (bool b : bits_) out.push_back(b ? '1' : '0');
  return out;
}

SerializedFrame serialize(const Frame& frame) {
  SerializedFrame out;
  BitString& bits = out.unstuffed;
  FrameLayout& layout = out.layout;

  // --- Start of frame ------------------------------------------------------
  layout.sof_begin = bits.size();
  bits.push_back(kDominant);

  // --- Arbitration field ---------------------------------------------------
  layout.arbitration_begin = bits.size();
  const CanId id = frame.id();
  if (!id.is_extended()) {
    bits.append_bits(id.raw(), kStdIdBits);
    bits.push_back(frame.is_remote() ? kRecessive : kDominant);  // RTR
    // --- Control field: IDE (dominant = standard) + r0 + DLC --------------
    layout.control_begin = bits.size();
    bits.push_back(kDominant);  // IDE
    bits.push_back(kDominant);  // r0
  } else {
    bits.append_bits(id.raw() >> 18, kStdIdBits);  // ID[28..18]
    bits.push_back(kRecessive);                    // SRR
    bits.push_back(kRecessive);                    // IDE (recessive = extended)
    bits.append_bits(id.raw() & 0x3FFFFu, 18);     // ID[17..0]
    bits.push_back(frame.is_remote() ? kRecessive : kDominant);  // RTR
    // --- Control field: r1 + r0 + DLC --------------------------------------
    layout.control_begin = bits.size();
    bits.push_back(kDominant);  // r1
    bits.push_back(kDominant);  // r0
  }
  bits.append_bits(frame.dlc(), 4);

  // --- Data field -----------------------------------------------------------
  layout.data_begin = bits.size();
  for (std::uint8_t byte : frame.payload()) {
    bits.append_bits(byte, 8);
  }

  // --- CRC sequence over SOF..data -----------------------------------------
  Crc15 crc;
  for (std::size_t i = 0; i < bits.size(); ++i) crc.push_bit(bits[i]);
  out.crc = crc.value();
  layout.crc_begin = bits.size();
  bits.append_bits(out.crc, 15);

  const std::size_t stuffable = bits.size();  // SOF..CRC is the stuff region

  // --- Fixed-form tail -------------------------------------------------------
  layout.crc_delimiter = bits.size();
  bits.push_back(kRecessive);  // CRC delimiter
  layout.ack_slot = bits.size();
  bits.push_back(kDominant);  // ACK slot (assume acknowledged)
  layout.ack_delimiter = bits.size();
  bits.push_back(kRecessive);  // ACK delimiter
  layout.eof_begin = bits.size();
  bits.append_repeated(kRecessive, 7);  // EOF
  layout.total_bits = bits.size();

  out.stuffed = stuff(bits, stuffable);
  out.stuff_bits_inserted =
      static_cast<int>(out.stuffed.size() - bits.size());
  return out;
}

BitString stuff(const BitString& raw, std::size_t stuffable_bits) {
  CANIDS_EXPECTS(stuffable_bits <= raw.size());
  BitString out;
  int run = 0;
  bool run_bit = kRecessive;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const bool bit = raw[i];
    out.push_back(bit);
    if (i >= stuffable_bits) continue;  // tail is never stuffed
    if (run > 0 && bit == run_bit) {
      ++run;
    } else {
      run = 1;
      run_bit = bit;
    }
    if (run == 5) {
      const bool stuffed_bit = !run_bit;
      out.push_back(stuffed_bit);
      // The stuff bit starts a new run of length 1.
      run = 1;
      run_bit = stuffed_bit;
    }
  }
  return out;
}

BitString destuff(const BitString& stuffed,
                  std::size_t stuffable_bits_expected) {
  BitString out;
  int run = 0;
  bool run_bit = kRecessive;
  bool expect_stuff_bit = false;
  for (std::size_t i = 0; i < stuffed.size(); ++i) {
    const bool bit = stuffed[i];
    if (out.size() >= stuffable_bits_expected && !expect_stuff_bit) {
      // Past the stuff region: copy the fixed-form tail verbatim.
      out.push_back(bit);
      continue;
    }
    if (expect_stuff_bit) {
      if (bit == run_bit) {
        throw std::invalid_argument(
            "stuff error: six identical consecutive bits at position " +
            std::to_string(i));
      }
      expect_stuff_bit = false;
      run = 1;
      run_bit = bit;
      continue;  // stuff bit is dropped
    }
    out.push_back(bit);
    if (run > 0 && bit == run_bit) {
      ++run;
    } else {
      run = 1;
      run_bit = bit;
    }
    // A run of five triggers a stuff bit even when it completes exactly at
    // the region boundary, matching the transmitter's rule above.
    if (run == 5) expect_stuff_bit = true;
  }
  if (expect_stuff_bit) {
    throw std::invalid_argument("truncated input: missing final stuff bit");
  }
  return out;
}

std::size_t wire_bit_length(const Frame& frame) {
  return serialize(frame).stuffed.size();
}

std::size_t max_wire_bit_length(IdFormat format, int dlc) noexcept {
  // Standard data frame: 1 SOF + 11 ID + 1 RTR + 2 control + 4 DLC + 8*dlc
  // data + 15 CRC = 34 + 8*dlc stuffable bits; worst-case stuffing adds
  // floor((n-1)/4); plus 10 fixed tail bits (delimiters, ACK, EOF).
  const int stuffable =
      (format == IdFormat::kStandard ? 34 : 54) + 8 * dlc;
  const int worst_stuff = (stuffable - 1) / 4;
  return static_cast<std::size_t>(stuffable + worst_stuff + 10);
}

util::TimeNs transmit_duration(const Frame& frame, std::uint32_t bitrate_bps) {
  CANIDS_EXPECTS(bitrate_bps > 0);
  const auto bits = static_cast<std::int64_t>(wire_bit_length(frame));
  return bits * util::kSecond / static_cast<std::int64_t>(bitrate_bps);
}

}  // namespace canids::can
