#include "can/bus.h"

#include <algorithm>

#include "util/contracts.h"

namespace canids::can {

BusSimulator::BusSimulator(BusConfig config) : config_(config) {
  CANIDS_EXPECTS(config_.bitrate_bps > 0);
  CANIDS_EXPECTS(config_.interframe_bits >= 0);
  CANIDS_EXPECTS(config_.retry_delay_bits >= 0);
  bit_time_ = util::kSecond / static_cast<std::int64_t>(config_.bitrate_bps);
}

int BusSimulator::add_node(std::unique_ptr<Node> node) {
  CANIDS_EXPECTS(node != nullptr);
  node->guard() = DominantTimeoutGuard(config_.transceiver);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

Node& BusSimulator::node(int index) {
  CANIDS_EXPECTS(index >= 0 && static_cast<std::size_t>(index) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(index)];
}

const Node& BusSimulator::node(int index) const {
  CANIDS_EXPECTS(index >= 0 && static_cast<std::size_t>(index) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(index)];
}

int BusSimulator::find_node(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

void BusSimulator::add_listener(std::function<void(const TimedFrame&)> listener) {
  CANIDS_EXPECTS(listener != nullptr);
  listeners_.push_back(std::move(listener));
}

std::vector<int> BusSimulator::eligible_contenders() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    if (!n.disabled() && n.has_pending() && n.retry_not_before() <= now_) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

util::TimeNs BusSimulator::next_activity_time() const {
  util::TimeNs earliest = util::kNever;
  for (const auto& node : nodes_) {
    if (node->disabled()) continue;
    earliest = std::min(earliest, node->next_production_time());
    if (node->has_pending()) {
      earliest = std::min(earliest, node->retry_not_before());
    }
  }
  return earliest;
}

void BusSimulator::deliver(const TimedFrame& frame) {
  for (const auto& listener : listeners_) listener(frame);
  for (const auto& node : nodes_) node->on_bus_frame(frame);
}

void BusSimulator::run_until(util::TimeNs end) {
  CANIDS_EXPECTS(end >= now_);
  const util::TimeNs start = now_;

  while (now_ < end) {
    for (const auto& node : nodes_) {
      if (!node->disabled()) node->produce(now_);
    }

    const std::vector<int> contenders = eligible_contenders();
    if (contenders.empty()) {
      const util::TimeNs next = next_activity_time();
      if (next == util::kNever || next >= end) {
        now_ = end;
        break;
      }
      now_ = std::max(now_, next);
      continue;
    }

    // --- Arbitration round -------------------------------------------------
    std::vector<Frame> heads;
    heads.reserve(contenders.size());
    for (int idx : contenders) heads.push_back(node(idx).head());

    const ArbitrationResult result =
        arbitrate(std::span<const Frame>(heads.data(), heads.size()));
    ++stats_.arbitration_rounds;
    if (contenders.size() > 1) ++stats_.contested_rounds;

    const int winner_index = contenders[result.winner];
    Node& winner = node(winner_index);

    for (std::size_t c = 0; c < contenders.size(); ++c) {
      node(contenders[c]).stats().arbitration_attempts += 1;
    }
    winner.stats().arbitration_wins += 1;
    for (std::size_t tied : result.tied_with_winner) {
      ++stats_.collisions;
      node(contenders[tied]).stats().collisions += 1;
      winner.stats().collisions += 1;
    }

    const Frame frame = winner.head();

    const util::TimeNs duration = transmit_duration(frame, config_.bitrate_bps);

    // --- Fault injection: an induced bit error destroys the frame --------
    const TimedFrame attempt{now_ + duration, frame, winner_index};
    if (fault_hook_ && fault_hook_(attempt)) {
      ++stats_.error_frames;
      winner.stats().transmit_errors += 1;
      winner.errors().on_transmit_error();
      if (winner.errors().bus_off()) {
        winner.set_disabled(true);
        ++stats_.bus_off_events;
      }
      // The slot is consumed by the aborted frame plus the error frame
      // (flag + delimiter, ~20 bits); the frame stays queued for retry.
      const util::TimeNs error_slot = duration / 2 + 20 * bit_time_;
      stats_.busy_time += error_slot;
      const util::TimeNs retry_at =
          now_ + error_slot +
          static_cast<std::int64_t>(config_.retry_delay_bits) * bit_time_;
      winner.set_retry_not_before(retry_at);
      for (std::size_t c = 0; c < contenders.size(); ++c) {
        if (contenders[c] == winner_index) continue;
        node(contenders[c]).set_retry_not_before(retry_at);
      }
      now_ += error_slot +
              static_cast<std::int64_t>(config_.interframe_bits) * bit_time_;
      continue;
    }

    winner.pop_head();
    const util::TimeNs t_end = now_ + duration;
    stats_.busy_time += duration;
    ++stats_.frames_transmitted;
    winner.stats().transmitted += 1;
    winner.errors().on_transmit_success();

    // Well-formed frames bound dominant runs via stuffing; still report the
    // span so the guard semantics hold uniformly.
    const int dominant_run = longest_dominant_run(frame);
    if (winner.guard().on_dominant_span(dominant_run * bit_time_)) {
      winner.set_disabled(true);
    }

    // Losers back off per config before re-entering contention.
    const util::TimeNs retry_at =
        t_end + static_cast<std::int64_t>(config_.retry_delay_bits) * bit_time_;
    for (std::size_t c = 0; c < contenders.size(); ++c) {
      if (contenders[c] == winner_index) continue;
      node(contenders[c]).set_retry_not_before(retry_at);
    }

    deliver(TimedFrame{t_end, frame, winner_index});

    now_ = t_end +
           static_cast<std::int64_t>(config_.interframe_bits) * bit_time_;
  }

  stats_.observed_time += now_ - start;
}

util::TimeNs BusSimulator::hold_bus_dominant(int node_index,
                                             util::TimeNs duration) {
  Node& holder = node(node_index);
  CANIDS_EXPECTS(duration >= 0);
  if (holder.disabled()) return 0;

  util::TimeNs held = duration;
  if (config_.transceiver.enabled &&
      duration > config_.transceiver.dominant_timeout) {
    held = config_.transceiver.dominant_timeout;
  }
  if (holder.guard().on_dominant_span(duration)) {
    holder.set_disabled(true);
  }
  stats_.busy_time += held;
  stats_.observed_time += held;
  now_ += held;
  return held;
}

}  // namespace canids::can
