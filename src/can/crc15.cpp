#include "can/crc15.h"

namespace canids::can {

std::uint16_t crc15_of(std::span<const std::uint8_t> bytes) noexcept {
  Crc15 crc;
  crc.push_bytes(bytes);
  return crc.value();
}

}  // namespace canids::can
