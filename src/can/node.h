// Simulated bus participants. A Node owns a bounded transmit queue (modelling
// controller mailboxes) and produces frames on its own schedule; the bus
// simulator drives arbitration between all nodes with pending frames.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "can/error.h"
#include "can/frame.h"
#include "can/transceiver.h"
#include "util/rng.h"
#include "util/time.h"

namespace canids::can {

/// Counters a node accumulates over a simulation. "generated" counts every
/// frame the application layer asked to send; the difference between
/// generated and transmitted is the paper's injection-success view of I_r.
struct NodeStats {
  std::uint64_t generated = 0;            ///< frames the node wanted to send
  std::uint64_t dropped_overflow = 0;     ///< lost to a full transmit queue
  std::uint64_t blocked_by_filter = 0;    ///< rejected by the transmitter filter
  std::uint64_t arbitration_attempts = 0; ///< arbitration rounds entered
  std::uint64_t arbitration_wins = 0;     ///< rounds won
  std::uint64_t transmitted = 0;          ///< frames fully sent on the bus
  std::uint64_t collisions = 0;           ///< ties with an identical field
  std::uint64_t transmit_errors = 0;      ///< transmissions hit by a fault

  /// Wins per arbitration attempt; the paper's Fig. 3 injection rate.
  [[nodiscard]] double arbitration_win_ratio() const noexcept {
    return arbitration_attempts == 0
               ? 0.0
               : static_cast<double>(arbitration_wins) /
                     static_cast<double>(arbitration_attempts);
  }

  /// Transmitted per generated frame; the success view used by N_m = Ir*f*T0.
  [[nodiscard]] double injection_success_ratio() const noexcept {
    return generated == 0 ? 0.0
                          : static_cast<double>(transmitted) /
                                static_cast<double>(generated);
  }
};

/// What to do when a frame arrives and the transmit queue is full.
enum class OverflowPolicy : std::uint8_t {
  kDropNewest,    ///< keep queued frames, drop the incoming one
  kReplaceOldest  ///< evict the oldest queued frame (controller overwrite)
};

/// Base class for all simulated ECUs (legitimate and malicious).
class Node {
 public:
  Node(std::string name, std::size_t queue_capacity = 8,
       OverflowPolicy overflow = OverflowPolicy::kDropNewest);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Enqueue every frame that becomes due at or before `now`.
  virtual void produce(util::TimeNs now) = 0;

  /// Earliest future time at which produce() would enqueue something, or
  /// util::kNever when the node has nothing scheduled.
  [[nodiscard]] virtual util::TimeNs next_production_time() const = 0;

  /// Observe a frame completing on the bus (own frames included).
  virtual void on_bus_frame(const TimedFrame& frame) { (void)frame; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] const Frame& head() const;
  void pop_head();

  [[nodiscard]] NodeStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool disabled() const noexcept { return disabled_; }
  void set_disabled(bool disabled) noexcept { disabled_ = disabled; }

  [[nodiscard]] DominantTimeoutGuard& guard() noexcept { return guard_; }

  /// ISO fault-confinement counters, maintained by the bus simulator.
  [[nodiscard]] ErrorCounters& errors() noexcept { return errors_; }
  [[nodiscard]] const ErrorCounters& errors() const noexcept {
    return errors_;
  }

  /// Earliest time this node may (re-)enter arbitration; updated by the bus
  /// after a lost round (the paper's "six clocks" back-off).
  [[nodiscard]] util::TimeNs retry_not_before() const noexcept {
    return retry_not_before_;
  }
  void set_retry_not_before(util::TimeNs t) noexcept { retry_not_before_ = t; }

  /// Install a transmitter-side filter (the weak adversary's constraint):
  /// frames failing the predicate never reach the queue and are counted in
  /// stats().blocked_by_filter.
  void set_transmit_filter(std::function<bool(const Frame&)> filter) {
    tx_filter_ = std::move(filter);
  }

 protected:
  /// Submit a frame from the node's application layer. Applies the
  /// transmitter filter and the overflow policy. Returns true if queued.
  bool submit(const Frame& frame);

 private:
  std::string name_;
  std::size_t queue_capacity_;
  OverflowPolicy overflow_;
  std::deque<Frame> queue_;
  NodeStats stats_;
  bool disabled_ = false;
  DominantTimeoutGuard guard_;
  ErrorCounters errors_;
  util::TimeNs retry_not_before_ = 0;
  std::function<bool(const Frame&)> tx_filter_;
};

/// Payload content models for periodic messages; they only affect the data
/// field, never the identifier, but keep simulated traffic realistic.
enum class PayloadKind : std::uint8_t {
  kConstant,  ///< fixed bytes
  kCounter,   ///< rolling message counter in byte 0, constant elsewhere
  kSensor,    ///< slowly drifting 16-bit signals
  kRandom     ///< uniformly random bytes
};

/// One periodic message an ECU emits.
struct MessageSpec {
  CanId id;
  util::TimeNs period = 100 * util::kMillisecond;
  util::TimeNs offset = 0;          ///< phase of the first transmission
  std::uint8_t dlc = 8;
  PayloadKind payload = PayloadKind::kSensor;
  double jitter_fraction = 0.005;   ///< uniform +-fraction of the period
};

/// A legitimate ECU transmitting a fixed set of periodic messages.
class PeriodicSender : public Node {
 public:
  PeriodicSender(std::string name, std::vector<MessageSpec> messages,
                 util::Rng rng, std::size_t queue_capacity = 8);

  void produce(util::TimeNs now) override;
  [[nodiscard]] util::TimeNs next_production_time() const override;

  [[nodiscard]] const std::vector<MessageSpec>& messages() const noexcept {
    return specs_;
  }

  /// Scale all periods by `factor` (> 0). Used by driving-behaviour changes
  /// and by the weak attacker, which speeds up its own legal messages.
  void scale_periods(double factor);

 private:
  struct ScheduleEntry {
    util::TimeNs next_due = 0;
    std::uint32_t sequence = 0;
    std::array<std::uint8_t, kMaxDataBytes> sensor_state{};
  };

  Frame make_frame(std::size_t index, util::TimeNs now);

  std::vector<MessageSpec> specs_;
  std::vector<ScheduleEntry> schedule_;
  util::Rng rng_;
};

/// A node that transmits an explicit list of (time, frame) pairs; useful in
/// tests and for replaying captured traces through the simulator.
class ScriptedSender : public Node {
 public:
  ScriptedSender(std::string name,
                 std::vector<std::pair<util::TimeNs, Frame>> script,
                 std::size_t queue_capacity = 64);

  void produce(util::TimeNs now) override;
  [[nodiscard]] util::TimeNs next_production_time() const override;

 private:
  std::vector<std::pair<util::TimeNs, Frame>> script_;  // sorted by time
  std::size_t cursor_ = 0;
};

}  // namespace canids::can
