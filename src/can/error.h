// CAN fault confinement (ISO 11898-1 §8): every node keeps a transmit and a
// receive error counter; crossing 127 demotes it to error-passive and
// crossing 255 removes it from the bus ("bus-off").
//
// This is the machinery behind the paper's reference [10] (Cho & Shin,
// "Error handling of in-vehicle networks makes them vulnerable"): an
// adversary that forces bit errors into a victim's frames drives the
// victim's TEC up by 8 per frame while recovering its own counter, until
// the victim bus-offs and its periodic messages vanish — a message
// *suppression* attack. The entropy IDS observes that suppression as a
// probability shift just like an injection (tests/integration cover it).
#pragma once

#include <algorithm>
#include <cstdint>

namespace canids::can {

/// Fault-confinement state derived from the error counters.
enum class FaultState : std::uint8_t {
  kErrorActive,   ///< normal operation
  kErrorPassive,  ///< TEC or REC > 127: may only send passive error flags
  kBusOff,        ///< TEC > 255: transmitter disconnected
};

/// ISO 11898-1 error counters with the standard increments/decrements.
class ErrorCounters {
 public:
  /// Transmitter detected an error in its own frame: TEC += 8.
  void on_transmit_error() noexcept {
    if (state() == FaultState::kBusOff) return;
    tec_ += 8;
  }

  /// Successful transmission: TEC -= 1 (floor 0).
  void on_transmit_success() noexcept { tec_ = std::max(0, tec_ - 1); }

  /// Receiver detected an error: REC += 1 (the spec's common case).
  void on_receive_error() noexcept {
    if (state() == FaultState::kBusOff) return;
    rec_ += 1;
  }

  /// Successful reception: REC -= 1 (floor 0).
  void on_receive_success() noexcept { rec_ = std::max(0, rec_ - 1); }

  [[nodiscard]] int transmit_errors() const noexcept { return tec_; }
  [[nodiscard]] int receive_errors() const noexcept { return rec_; }

  [[nodiscard]] FaultState state() const noexcept {
    if (tec_ > 255) return FaultState::kBusOff;
    if (tec_ > 127 || rec_ > 127) return FaultState::kErrorPassive;
    return FaultState::kErrorActive;
  }

  [[nodiscard]] bool bus_off() const noexcept {
    return state() == FaultState::kBusOff;
  }

  /// Bus-off recovery (128 occurrences of 11 recessive bits, modelled as an
  /// explicit reset by the application).
  void reset() noexcept {
    tec_ = 0;
    rec_ = 0;
  }

 private:
  int tec_ = 0;
  int rec_ = 0;
};

}  // namespace canids::can
