// Binary wire framing for socket ingest. After a data connection sends the
// `BINARY` line, its byte stream is a sequence of canidsBT 22-byte records
// (the same layout `canids convert` writes to disk) with no container
// header: fixed-size framing means a recv boundary can only ever split a
// record, never lose sync, so partial records are carried across feeds in
// a small stack buffer and framing resumes at the next 22-byte boundary
// after a tampered record. Unlike the strict file loader, a bad record
// (reserved id bit, out-of-range dlc, nonzero payload padding) is counted
// as a per-stream parse error and the connection lives — the wire
// equivalent of a malformed candump line. The channel-index byte is
// ignored: a socket stream has no channel table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "can/frame.h"
#include "trace/binary_trace.h"

namespace canids::serve {

class BinaryFramer {
 public:
  /// Feed one received chunk: decodes every complete record, appending the
  /// valid ones to `out` as (timestamp, id) items and counting the invalid
  /// ones in faults(). Trailing bytes short of a full record are buffered
  /// for the next feed. Returns the number of items appended.
  std::size_t feed(const char* data, std::size_t size,
                   std::vector<can::TimedId>& out);

  /// Connection end-of-stream: a buffered partial record means the client
  /// died mid-record — counted as one fault (binary writers always end on
  /// a record boundary).
  void finish();

  /// Invalid or truncated records seen so far.
  [[nodiscard]] std::uint64_t faults() const noexcept { return faults_; }

  /// Bytes of a partial record currently buffered.
  [[nodiscard]] std::size_t pending() const noexcept { return partial_len_; }

 private:
  unsigned char partial_[trace::kBinaryRecordBytes];
  std::size_t partial_len_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace canids::serve
