#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <array>

#include "model/store.h"
#include "serve/alert_json.h"
#include "serve/wire_framing.h"
#include "telemetry/exposition.h"
#include "trace/candump.h"

namespace canids::serve {

namespace {

/// Alert bytes a subscriber may have queued before further lines are
/// dropped (counted) — bounds memory per slow subscriber.
constexpr std::size_t kMaxSubscriberBacklog = 1u << 20;
/// iovec fan-in per sendmsg call when draining a subscriber queue.
constexpr std::size_t kMaxAlertIov = 64;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Blocking-ish full write on a (possibly nonblocking) fd — used only for
/// small, rare control replies.
void send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent > 0) {
      data += sent;
      size -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 1000);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return;  // peer gone — nothing useful to do with a control reply
  }
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  (void)::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd);
  return fd;
}

int listen_tcp(const std::string& host, int port, int* resolved_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(" + host + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *resolved_port = ntohs(bound.sin_port);
  }
  set_nonblocking(fd);
  return fd;
}

}  // namespace

/// One accepted socket. Data connections own (at most) one engine stream;
/// control connections only exchange command/reply lines; subscriber
/// connections only receive alert JSONL.
struct ServeServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  bool control = false;
  bool subscriber = false;
  std::string key;  ///< from HELLO; empty = generated at stream open
  bool binary = false;  ///< wire mode: flipped by the BINARY line
  LineFramer framer;
  BinaryFramer bframer;
  /// Frames parsed from the current recv chunk, landed with one
  /// push_batch per chunk.
  std::vector<engine::FleetEngine::FrameItem> scratch;
  std::optional<engine::FleetEngine::Stream> stream;
  std::uint64_t oversized_seen = 0;
  std::uint64_t wire_faults_seen = 0;
  /// Last values the event log saw (note_stream_events deltas).
  std::uint64_t parse_errors_seen = 0;
  std::uint64_t queue_dropped_seen = 0;

  Connection(int fd_in, std::uint64_t id_in, bool control_in,
             std::size_t max_line)
      : fd(fd_in), id(id_in), control(control_in), framer(max_line) {}
};

ServeServer::ServeServer(engine::FleetEngine& engine, ServeConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.uds_path.empty() && config_.tcp_port < 0) {
    throw std::invalid_argument(
        "serve: need at least one data listener (uds path or tcp port)");
  }
  registry_ = engine_.config().metrics
                  ? engine_.config().metrics
                  : std::make_shared<telemetry::MetricsRegistry>();
  events_ = engine_.config().events;
  telemetry_sample_ = engine_.config().telemetry_sample;
  connections_total_ = &registry_->counter(
      "canids_serve_connections_total",
      "Accepted socket connections (data + control).");
  streams_opened_total_ = &registry_->counter(
      "canids_serve_streams_opened_total",
      "Engine streams opened for data connections.");
  alerts_total_ = &registry_->counter(
      "canids_serve_alerts_total",
      "Alert lines fanned out (file sink and/or subscribers).");
  reloads_total_ = &registry_->counter("canids_serve_reloads_total",
                                       "Successful model reloads.");
  subscriber_dropped_total_ = &registry_->counter(
      "canids_serve_subscriber_dropped_total",
      "Alert lines a slow or gone subscriber did not receive.");
  ingest_bytes_total_ = &registry_->counter(
      "canids_ingest_bytes_total",
      "Bytes received on data connections (text and binary wire).");
  wire_records_text_ = &registry_->counter(
      "canids_wire_records_total",
      "Frames accepted from the wire, by connection wire mode.",
      {{"mode", "text"}});
  wire_records_binary_ = &registry_->counter(
      "canids_wire_records_total",
      "Frames accepted from the wire, by connection wire mode.",
      {{"mode", "binary"}});
  uptime_gauge_ = &registry_->gauge("canids_serve_uptime_ns",
                                    "Nanoseconds since run() started.");
  if (telemetry_sample_ > 0) {
    parse_hist_ = &registry_->histogram(
        "canids_ingest_parse_ns",
        "Candump line parse wall time per sampled data line.",
        telemetry::latency_bounds_ns());
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw_errno("pipe2");
  }
  try {
    setup_listeners();
  } catch (...) {
    teardown();
    throw;
  }
  if (!config_.alerts_out.empty()) {
    alerts_out_.emplace(config_.alerts_out,
                        std::ios::out | std::ios::trunc);
    if (!*alerts_out_) {
      teardown();
      throw std::runtime_error("serve: cannot open alerts sink " +
                               config_.alerts_out);
    }
  }
  // Alert fan-out starts immediately: shard workers call this handler for
  // every alerting window, including ones flushed during engine.finish().
  engine_.alerts().set_handler(
      [this](const engine::FleetAlert& alert) { publish_alert(alert); });
}

ServeServer::~ServeServer() {
  // Detach the fan-out handler (it captures `this`) before members die;
  // anything the engine publishes later is retained by the sink instead.
  engine_.alerts().set_handler({});
  teardown();
}

void ServeServer::setup_listeners() {
  if (!config_.uds_path.empty()) {
    uds_listener_ = listen_unix(config_.uds_path);
  }
  if (config_.tcp_port >= 0) {
    tcp_listener_ =
        listen_tcp(config_.tcp_host, config_.tcp_port, &tcp_port_);
  }
  if (!config_.control_path.empty()) {
    control_listener_ = listen_unix(config_.control_path);
  }
}

void ServeServer::teardown() {
  for (std::unique_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) close_connection(*conn);
  }
  connections_.clear();
  auto close_listener = [](int& fd) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  };
  close_listener(uds_listener_);
  close_listener(tcp_listener_);
  close_listener(control_listener_);
  if (!config_.uds_path.empty()) (void)::unlink(config_.uds_path.c_str());
  if (!config_.control_path.empty()) {
    (void)::unlink(config_.control_path.c_str());
  }
  close_listener(wake_pipe_[0]);
  close_listener(wake_pipe_[1]);
  flush_alerts();
}

void ServeServer::post_shutdown() noexcept {
  const char c = 'q';
  (void)!::write(wake_pipe_[1], &c, 1);
}

void ServeServer::post_reload() noexcept {
  const char c = 'r';
  (void)!::write(wake_pipe_[1], &c, 1);
}

void ServeServer::post_status() noexcept {
  const char c = 's';
  (void)!::write(wake_pipe_[1], &c, 1);
}

ServeStats ServeServer::stats() const {
  ServeStats s;
  s.connections = connections_total_->value();
  s.streams_opened = streams_opened_total_->value();
  s.alerts = alerts_total_->value();
  s.reloads = reloads_total_->value();
  s.subscriber_dropped = subscriber_dropped_total_->value();
  return s;
}

void ServeServer::flush_alerts() {
  const std::lock_guard<std::mutex> lock(alert_mutex_);
  if (alerts_out_) alerts_out_->flush();
}

void ServeServer::publish_alert(const engine::FleetAlert& alert) {
  std::string line = to_json_line(alert);
  line.push_back('\n');
  {
    const std::lock_guard<std::mutex> lock(alert_mutex_);
    if (alerts_out_) alerts_out_->write(line.data(), line.size());
    for (SubscriberState& sub : subscribers_) {
      // Best-effort fan-out: a subscriber more than a backlog behind loses
      // the line (counted), rather than growing an unbounded queue or
      // stalling the shard worker publishing the alert.
      if (sub.pending_bytes + line.size() > kMaxSubscriberBacklog) {
        subscriber_dropped_total_->add();
        continue;
      }
      sub.pending.push_back(line);
      sub.pending_bytes += line.size();
      flush_subscriber(sub);
    }
  }
  alerts_total_->add();
}

void ServeServer::flush_subscriber(SubscriberState& sub) {
  while (!sub.pending.empty()) {
    // Coalesce queued lines into one vectored send — one syscall flushes
    // a burst of alerts instead of one send per line.
    std::array<iovec, kMaxAlertIov> iov;
    std::size_t count = 0;
    std::size_t offset = sub.front_offset;
    for (const std::string& queued : sub.pending) {
      if (count == iov.size()) break;
      iov[count].iov_base = const_cast<char*>(queued.data()) + offset;
      iov[count].iov_len = queued.size() - offset;
      offset = 0;
      ++count;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = count;
    const ssize_t sent = ::sendmsg(sub.fd, &msg, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      // EAGAIN: retried when poll reports the fd writable. A dead peer is
      // reaped by the run loop (recv reports the hang-up).
      return;
    }
    sub.pending_bytes -= static_cast<std::size_t>(sent);
    std::size_t advanced = static_cast<std::size_t>(sent);
    while (advanced > 0) {
      const std::size_t remain =
          sub.pending.front().size() - sub.front_offset;
      if (advanced < remain) {
        sub.front_offset += advanced;
        break;
      }
      advanced -= remain;
      sub.pending.pop_front();
      sub.front_offset = 0;
    }
  }
}

bool ServeServer::subscriber_pending(int fd) const {
  const std::lock_guard<std::mutex> lock(alert_mutex_);
  for (const SubscriberState& sub : subscribers_) {
    if (sub.fd == fd) return sub.pending_bytes > 0;
  }
  return false;
}

void ServeServer::flush_subscriber_fd(int fd) {
  const std::lock_guard<std::mutex> lock(alert_mutex_);
  for (SubscriberState& sub : subscribers_) {
    if (sub.fd == fd) {
      flush_subscriber(sub);
      return;
    }
  }
}

void ServeServer::drop_subscriber(int fd) {
  const std::lock_guard<std::mutex> lock(alert_mutex_);
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].fd == fd) {
      if (i + 1 < subscribers_.size()) {
        subscribers_[i] = std::move(subscribers_.back());
      }
      subscribers_.pop_back();
      return;
    }
  }
}

void ServeServer::open_stream_for(Connection& conn) {
  std::string key = conn.key;
  if (key.empty()) key = "conn-" + std::to_string(conn.id);
  conn.stream = engine_.open_stream(std::move(key));
  streams_opened_total_->add();
  note_wire_mode(conn);
}

void ServeServer::note_wire_mode(Connection& conn) {
  if (!conn.stream) return;
  const std::lock_guard<std::mutex> lock(wire_mutex_);
  stream_wires_[conn.stream->key()] = conn.binary ? "binary" : "text";
}

void ServeServer::handle_data_line(Connection& conn, std::string_view line) {
  if (conn.subscriber) return;  // subscribers only listen
  if (line == "BINARY") {
    // Protocol upgrade: every byte after this line's newline is a canidsBT
    // record stream. The caller stops line framing and routes the rest of
    // the chunk (and every later chunk) through the binary framer.
    conn.binary = true;
    note_wire_mode(conn);
    return;
  }
  if (!conn.stream) {
    if (line.rfind("HELLO ", 0) == 0) {
      std::string_view key = line.substr(6);
      while (!key.empty() && key.front() == ' ') key.remove_prefix(1);
      while (!key.empty() && key.back() == ' ') key.remove_suffix(1);
      if (!key.empty()) conn.key = std::string(key);
      return;
    }
    if (line == "SUBSCRIBE") {
      conn.subscriber = true;
      const std::lock_guard<std::mutex> lock(alert_mutex_);
      SubscriberState sub;
      sub.fd = conn.fd;
      subscribers_.push_back(std::move(sub));
      return;
    }
  }
  trace::LogRecord record;
  const bool sampled =
      parse_hist_ != nullptr && ++sample_tick_ >= telemetry_sample_;
  std::int64_t t0 = 0;
  if (sampled) {
    sample_tick_ = 0;
    t0 = steady_now_ns();
  }
  try {
    record = trace::parse_candump_line(line);
    if (sampled) {
      parse_hist_->observe(static_cast<std::uint64_t>(steady_now_ns() - t0));
    }
  } catch (const trace::ParseError&) {
    // Same contract as file ingest: count it against the stream and keep
    // the connection alive.
    if (!conn.stream) open_stream_for(conn);
    conn.stream->record_parse_error();
    return;
  }
  conn.scratch.push_back(
      engine::FleetEngine::FrameItem{record.timestamp, record.frame.id()});
}

std::string ServeServer::do_reload(const std::string& path) {
  const std::string& effective =
      path.empty() ? config_.models_path : path;
  if (effective.empty()) {
    return "error: no model bundle path configured (start serve with a "
           "models argument or pass RELOAD <path>)";
  }
  try {
    const model::StoredModels models = model::load_models_file(effective);
    if (models.empty()) return "error: bundle holds no models";
    analysis::ModelRefs refs;
    refs.golden = models.golden;
    refs.muter = models.muter;
    refs.interval = models.interval;
    engine_.reload_models(refs);
  } catch (const std::exception& e) {
    if (events_) {
      events_->emit("reload_error",
                    {{"path", effective}, {"error", e.what()}});
    }
    return std::string("error: ") + e.what();
  }
  reloads_total_->add();
  return "ok generation=" + std::to_string(engine_.model_generation());
}

void ServeServer::handle_control_line(Connection& conn,
                                      std::string_view line) {
  std::string reply;
  if (line == "STATUS") {
    reply = status_json();
  } else if (line == "METRICS") {
    // The one multi-line reply: full Prometheus exposition, terminated by
    // a "# EOF" marker line so clients on a still-open connection know
    // where it ends.
    reply = metrics_text();
    reply += "# EOF";
  } else if (line == "SHUTDOWN") {
    reply = "ok";
    shutdown_.store(true, std::memory_order_release);
  } else if (line == "RELOAD" || line.rfind("RELOAD ", 0) == 0) {
    std::string path;
    if (line.size() > 7) path = std::string(line.substr(7));
    reply = do_reload(path);
  } else {
    reply =
        "error: unknown command (STATUS | METRICS | RELOAD [path] | "
        "SHUTDOWN)";
  }
  reply.push_back('\n');
  send_all(conn.fd, reply.data(), reply.size());
}

std::string ServeServer::metrics_text() {
  engine_.publish_metrics();
  const std::int64_t started = started_ns_;
  uptime_gauge_->set(started == 0 ? 0 : steady_now_ns() - started);
  return telemetry::to_prometheus_text(*registry_);
}

std::string ServeServer::status_json() const {
  const ServeStats snapshot = stats();
  std::string out = "{\"uptime_ns\": ";
  out += std::to_string(started_ns_ == 0 ? 0 : steady_now_ns() -
                                                   started_ns_);
  out += ", \"model_generation\": " +
         std::to_string(engine_.model_generation());
  out += ", \"connections\": " + std::to_string(snapshot.connections);
  out += ", \"streams_opened\": " + std::to_string(snapshot.streams_opened);
  out += ", \"alerts\": " + std::to_string(snapshot.alerts);
  out += ", \"reloads\": " + std::to_string(snapshot.reloads);
  out += ", \"subscriber_dropped\": " +
         std::to_string(snapshot.subscriber_dropped);
  out += ", \"streams\": [";
  bool first = true;
  for (const engine::StreamStatus& row : engine_.status()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"key\": ";
    append_json_string(out, row.key);
    out += ", \"wire\": \"";
    {
      const std::lock_guard<std::mutex> lock(wire_mutex_);
      const auto it = stream_wires_.find(row.key);
      out += it == stream_wires_.end() ? "text" : it->second;
    }
    out += "\"";
    out += ", \"shard\": " + std::to_string(row.shard);
    out += ", \"queue_depth\": " + std::to_string(row.queue_depth);
    out += ", \"closed\": ";
    out += row.closed ? "true" : "false";
    out += ", \"drained\": ";
    out += row.drained ? "true" : "false";
    out += ", \"frames\": " + std::to_string(row.counters.frames);
    out += ", \"windows_closed\": " +
           std::to_string(row.counters.windows_closed);
    out += ", \"windows_evaluated\": " +
           std::to_string(row.counters.windows_evaluated);
    out += ", \"alerts\": " + std::to_string(row.counters.alerts);
    out += ", \"parse_errors\": " +
           std::to_string(row.counters.parse_errors);
    out += ", \"dropped_frames\": " +
           std::to_string(row.counters.dropped_frames);
    out += ", \"queue_dropped\": " +
           std::to_string(row.counters.queue_dropped);
    out += "}";
  }
  out += "]}";
  return out;
}

int ServeServer::accept_on(int listener_fd) {
  const int fd = ::accept4(listener_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return -1;
  return fd;
}

void ServeServer::note_stream_events(Connection& conn) {
  if (!events_ || !conn.stream) return;
  const std::uint64_t dropped = conn.stream->queue_dropped();
  if (dropped != conn.queue_dropped_seen) {
    events_->emit("queue_drop",
                  {{"stream", conn.stream->key()},
                   {"dropped", dropped - conn.queue_dropped_seen},
                   {"total", dropped}});
    conn.queue_dropped_seen = dropped;
  }
  const std::uint64_t parse_errors = conn.stream->parse_errors();
  if (parse_errors != conn.parse_errors_seen) {
    events_->emit("parse_error_burst",
                  {{"stream", conn.stream->key()},
                   {"errors", parse_errors - conn.parse_errors_seen},
                   {"total", parse_errors}});
    conn.parse_errors_seen = parse_errors;
  }
}

void ServeServer::flush_scratch(Connection& conn, bool binary) {
  if (conn.scratch.empty()) return;
  if (!conn.stream) open_stream_for(conn);
  conn.stream->push_batch(conn.scratch.data(), conn.scratch.size());
  (binary ? wire_records_binary_ : wire_records_text_)
      ->add(conn.scratch.size());
  conn.scratch.clear();
}

void ServeServer::note_wire_faults(Connection& conn) {
  const std::uint64_t faults = conn.bframer.faults();
  if (faults == conn.wire_faults_seen) return;
  // Invalid binary records are the wire equivalent of malformed candump
  // lines: counted against the stream, connection lives (fixed-size
  // framing resumes at the next record boundary).
  if (!conn.stream) open_stream_for(conn);
  for (std::uint64_t i = conn.wire_faults_seen; i < faults; ++i) {
    conn.stream->record_parse_error();
  }
  conn.wire_faults_seen = faults;
}

void ServeServer::handle_data_chunk(Connection& conn, const char* data,
                                    std::size_t size) {
  ingest_bytes_total_->add(size);
  std::size_t pos = 0;
  if (!conn.binary) {
    pos = conn.framer.feed_some(data, size, [&](std::string_view line) {
      handle_data_line(conn, line);
      // A BINARY line stops the framer: the rest of the chunk is records.
      return !conn.binary;
    });
    if (conn.binary) {
      // Frames parsed as text before the switch land under the text
      // counter before the binary remainder is framed.
      flush_scratch(conn, /*binary=*/false);
    }
    const std::uint64_t oversized = conn.framer.oversized();
    if (oversized != conn.oversized_seen && !conn.subscriber) {
      if (!conn.stream) open_stream_for(conn);
      for (std::uint64_t i = conn.oversized_seen; i < oversized; ++i) {
        conn.stream->record_parse_error();
      }
      conn.oversized_seen = oversized;
    }
  }
  if (conn.binary && pos < size) {
    conn.bframer.feed(data + pos, size - pos, conn.scratch);
    note_wire_faults(conn);
  }
  // One engine hand-off per recv chunk: the whole chunk's frames land with
  // a single push_batch (counted drop/block semantics live in push_batch).
  flush_scratch(conn, conn.binary);
  // One event per recv chunk at most — bursts coalesce into one line with
  // a delta, not an event per frame.
  note_stream_events(conn);
}

void ServeServer::read_connection(Connection& conn) {
  char buffer[65536];
  // Bounded reads per poll round so one firehose client cannot starve the
  // rest of the loop.
  for (int round = 0; round < 8; ++round) {
    const ssize_t got = ::recv(conn.fd, buffer, sizeof buffer, 0);
    if (got > 0) {
      if (conn.control) {
        conn.framer.feed(buffer, static_cast<std::size_t>(got),
                         [&](std::string_view line) {
                           handle_control_line(conn, line);
                         });
      } else {
        handle_data_chunk(conn, buffer, static_cast<std::size_t>(got));
      }
      if (got < static_cast<ssize_t>(sizeof buffer)) return;
      continue;
    }
    if (got == 0) {
      close_connection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_connection(conn);  // hard error: treat as hang-up
    return;
  }
}

void ServeServer::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  if (conn.subscriber) drop_subscriber(conn.fd);
  if (conn.control) {
    conn.framer.finish(
        [&](std::string_view line) { handle_control_line(conn, line); });
  } else {
    if (conn.binary) {
      // A buffered partial record means the client died mid-record:
      // counted as a parse error, like an unterminated garbage line.
      conn.bframer.finish();
      note_wire_faults(conn);
    } else {
      // Deliver a final unterminated line, then close the stream — the
      // shard worker flushes its last (possibly partial) window.
      conn.framer.finish(
          [&](std::string_view line) { handle_data_line(conn, line); });
      flush_scratch(conn, /*binary=*/false);
    }
    if (conn.stream) {
      conn.stream->close();
      note_stream_events(conn);
      if (events_) {
        events_->emit("stream_close", {{"stream", conn.stream->key()}});
      }
    }
  }
  ::close(conn.fd);
  conn.fd = -1;
}

void ServeServer::run() {
  started_ns_ = steady_now_ns();
  if (events_) {
    events_->emit("serve_start", {{"uds", config_.uds_path},
                                  {"tcp_port", tcp_port_},
                                  {"control", config_.control_path}});
  }
  std::vector<pollfd> fds;
  std::vector<Connection*> fd_conns;

  while (!shutdown_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_conns.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const std::size_t listeners_begin = fds.size();
    for (const int listener :
         {uds_listener_, tcp_listener_, control_listener_}) {
      if (listener >= 0) fds.push_back(pollfd{listener, POLLIN, 0});
    }
    const std::size_t conns_begin = fds.size();
    for (std::unique_ptr<Connection>& conn : connections_) {
      if (conn->fd < 0) continue;
      short events = POLLIN;
      // A subscriber with a backed-up alert queue also waits for
      // writability so the queue drains as soon as the peer catches up.
      if (conn->subscriber && subscriber_pending(conn->fd)) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conns.push_back(conn.get());
    }

    const int ready = ::poll(fds.data(), fds.size(), 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable for the loop
    }

    // Wake pipe: coalesce every pending command byte.
    if ((fds[0].revents & POLLIN) != 0) {
      char commands[64];
      ssize_t got;
      while ((got = ::read(wake_pipe_[0], commands, sizeof commands)) > 0) {
        for (ssize_t i = 0; i < got; ++i) {
          switch (commands[i]) {
            case 'q': shutdown_.store(true, std::memory_order_release); break;
            case 'r': {
              const std::string result = do_reload("");
              std::fprintf(stderr, "canids serve: reload %s\n",
                           result.c_str());
              break;
            }
            case 's':
              std::fprintf(stderr, "%s\n", status_json().c_str());
              break;
            default: break;
          }
        }
      }
    }

    // Listeners: accept everything pending.
    for (std::size_t i = listeners_begin; i < conns_begin; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const bool is_control = fds[i].fd == control_listener_;
      int fd;
      while ((fd = accept_on(fds[i].fd)) >= 0) {
        connections_.push_back(std::make_unique<Connection>(
            fd, next_conn_id_++, is_control, config_.max_line));
        connections_total_->add();
      }
    }

    // Connections with input (or hang-ups — recv() reports those as EOF).
    for (std::size_t i = conns_begin; i < fds.size(); ++i) {
      Connection& conn = *fd_conns[i - conns_begin];
      if (conn.fd >= 0 && (fds[i].revents & POLLOUT) != 0 &&
          conn.subscriber) {
        flush_subscriber_fd(conn.fd);
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (conn.fd >= 0) read_connection(conn);
    }

    // Compact closed connections.
    for (std::size_t i = 0; i < connections_.size();) {
      if (connections_[i]->fd < 0) {
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
  }

  // Shutdown: drain every framer, close every stream, drop the sockets.
  // The engine keeps running — the caller finish()es it (flushing final
  // windows through the alert handler) and then reads the results.
  teardown();
  if (events_) {
    events_->emit("serve_stop",
                  {{"connections", connections_total_->value()},
                   {"alerts", alerts_total_->value()}});
  }
}

}  // namespace canids::serve
