#include "serve/alert_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace canids::serve {

std::string to_json_line(const engine::FleetAlert& alert) {
  const analysis::WindowVerdict& v = alert.verdict;
  std::string out;
  out.reserve(160);
  out += "{\"stream\": ";
  append_json_string(out, alert.stream);
  out += ", \"start_ns\": " + std::to_string(v.start);
  out += ", \"end_ns\": " + std::to_string(v.end);
  out += ", \"frames\": " + std::to_string(v.frames);
  out += ", \"evaluated\": ";
  out += v.evaluated ? "true" : "false";
  out += ", \"alert\": ";
  out += v.alert ? "true" : "false";
  out += ", \"metric\": ";
  append_json_double(out, v.metric);
  out += ", \"threshold\": ";
  append_json_double(out, v.threshold);
  if (v.detail) {
    if (!v.detail->alerted_bits.empty()) {
      out += ", \"bits\": [";
      for (std::size_t i = 0; i < v.detail->alerted_bits.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(v.detail->alerted_bits[i]);
      }
      out += "]";
    }
    if (!v.detail->ranked_candidates.empty()) {
      out += ", \"candidates\": [";
      for (std::size_t i = 0; i < v.detail->ranked_candidates.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(v.detail->ranked_candidates[i]);
      }
      out += "]";
    }
    if (!v.detail->voters.empty()) {
      out += ", \"voters\": [";
      for (std::size_t i = 0; i < v.detail->voters.size(); ++i) {
        if (i > 0) out += ", ";
        append_json_string(out, v.detail->voters[i]);
      }
      out += "]";
    }
  }
  out += "}";
  return out;
}

namespace {

/// Minimal recursive-descent parser for the one object shape above —
/// deliberately not a general JSON library (the repo has none, and the
/// schema is fixed), but strict about what it does accept.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  engine::FleetAlert parse() {
    engine::FleetAlert alert;
    bool has_detail = false;
    analysis::Alert detail;
    skip_ws();
    expect('{');
    skip_ws();
    if (!try_consume('}')) {
      for (;;) {
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "stream") {
          alert.stream = parse_string();
        } else if (key == "start_ns") {
          alert.verdict.start = parse_integer();
        } else if (key == "end_ns") {
          alert.verdict.end = parse_integer();
        } else if (key == "frames") {
          alert.verdict.frames = static_cast<std::uint64_t>(parse_integer());
        } else if (key == "evaluated") {
          alert.verdict.evaluated = parse_bool();
        } else if (key == "alert") {
          alert.verdict.alert = parse_bool();
        } else if (key == "metric") {
          alert.verdict.metric = parse_double();
        } else if (key == "threshold") {
          alert.verdict.threshold = parse_double();
        } else if (key == "bits") {
          has_detail = true;
          for (const long long bit : parse_int_array()) {
            detail.alerted_bits.push_back(static_cast<int>(bit));
          }
        } else if (key == "candidates") {
          has_detail = true;
          for (const long long id : parse_int_array()) {
            detail.ranked_candidates.push_back(
                static_cast<std::uint32_t>(id));
          }
        } else if (key == "voters") {
          has_detail = true;
          detail.voters = parse_string_array();
        } else {
          skip_value();  // forward compatibility
        }
        skip_ws();
        if (try_consume(',')) {
          skip_ws();
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after object");
    // An alerting verdict always carries detail (possibly with all arrays
    // empty — e.g. symbol-entropy); detail arrays on a non-alerting line
    // are accepted and dropped, matching what the renderer can emit.
    (void)has_detail;
    if (alert.verdict.alert) alert.verdict.detail = std::move(detail);
    return alert;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("alert JSONL: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (value > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(value));
          break;
        }
        default: fail("unknown escape");
      }
    }
    expect('"');
    return out;
  }

  std::string_view number_token() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) fail("expected number");
    return text_.substr(begin, pos_ - begin);
  }

  long long parse_integer() {
    const std::string token(number_token());
    return std::strtoll(token.c_str(), nullptr, 10);
  }

  double parse_double() {
    const std::string token(number_token());
    return std::strtod(token.c_str(), nullptr);
  }

  bool parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true/false");
  }

  std::vector<long long> parse_int_array() {
    std::vector<long long> out;
    expect('[');
    skip_ws();
    if (try_consume(']')) return out;
    for (;;) {
      out.push_back(parse_integer());
      skip_ws();
      if (try_consume(',')) {
        skip_ws();
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::vector<std::string> parse_string_array() {
    std::vector<std::string> out;
    expect('[');
    skip_ws();
    if (try_consume(']')) return out;
    for (;;) {
      out.push_back(parse_string());
      skip_ws();
      if (try_consume(',')) {
        skip_ws();
        continue;
      }
      expect(']');
      return out;
    }
  }

  /// Skip any JSON value (unknown keys).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '[') {
      ++pos_;
      skip_ws();
      if (try_consume(']')) return;
      for (;;) {
        skip_value();
        skip_ws();
        if (try_consume(',')) continue;
        expect(']');
        return;
      }
    } else if (c == '{') {
      ++pos_;
      skip_ws();
      if (try_consume('}')) return;
      for (;;) {
        (void)parse_string();
        skip_ws();
        expect(':');
        skip_value();
        skip_ws();
        if (try_consume(',')) {
          skip_ws();
          continue;
        }
        expect('}');
        return;
      }
    } else if (c == 't' || c == 'f') {
      (void)parse_bool();
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      (void)number_token();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

engine::FleetAlert parse_json_line(std::string_view line) {
  return Parser(line).parse();
}

}  // namespace canids::serve
