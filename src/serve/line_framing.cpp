#include "serve/line_framing.h"

#include <cstring>

namespace canids::serve {

namespace {

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

void LineFramer::feed(const char* data, std::size_t size,
                      const LineFn& on_line) {
  feed_some(data, size, [&on_line](std::string_view line) {
    on_line(line);
    return true;
  });
}

std::size_t LineFramer::feed_some(const char* data, std::size_t size,
                                  const GatedLineFn& on_line) {
  std::size_t pos = 0;
  while (pos < size) {
    const void* found = std::memchr(data + pos, '\n', size - pos);
    if (found == nullptr) {
      // No newline in the remainder: buffer it (or keep discarding).
      if (discarding_) return size;
      if (buffer_.size() + (size - pos) > max_line_) {
        ++oversized_;
        discarding_ = true;
        buffer_.clear();
        return size;
      }
      buffer_.append(data + pos, size - pos);
      return size;
    }
    const std::size_t nl =
        static_cast<std::size_t>(static_cast<const char*>(found) - data);
    if (discarding_) {
      // This newline terminates the oversized line; resume framing after.
      discarding_ = false;
      pos = nl + 1;
      continue;
    }
    bool keep_framing = true;
    if (buffer_.empty()) {
      // Fast path: the whole line lives inside this chunk — deliver a view
      // into it, no copy.
      if (nl - pos > max_line_) {
        ++oversized_;
      } else {
        keep_framing = on_line(strip_cr(std::string_view(data + pos, nl - pos)));
      }
    } else {
      if (buffer_.size() + (nl - pos) > max_line_) {
        ++oversized_;
      } else {
        buffer_.append(data + pos, nl - pos);
        keep_framing = on_line(strip_cr(buffer_));
      }
      buffer_.clear();
    }
    pos = nl + 1;
    if (!keep_framing) return pos;
  }
  return size;
}

void LineFramer::finish(const LineFn& on_line) {
  if (discarding_) {
    // Already counted when it overflowed; nothing to deliver.
    discarding_ = false;
    return;
  }
  if (buffer_.empty()) return;
  const std::string_view line = strip_cr(buffer_);
  if (!line.empty()) on_line(line);
  buffer_.clear();
}

}  // namespace canids::serve
