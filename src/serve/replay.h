// The daemon's replay client: `canids send` connects to a running
// `canids serve`, announces a stream key, and writes a recorded capture as
// candump lines or (--wire binary/auto) as the canidsBT binary record
// stream — optionally paced by the capture's own timestamps, so CI,
// benches, and demos can drive the live service with reproducible
// traffic. Also usable in-process (tests, bench_serve) against any
// SOCK_STREAM address.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace canids::serve {

/// Which data-plane wire encoding `send_trace` speaks.
enum class SendWire : std::uint8_t {
  kText,    ///< candump lines (the default, works against any server)
  kBinary,  ///< BINARY negotiation + canidsBT 22-byte records
  kAuto,    ///< binary when the capture itself is canidsBT, else text
};

struct SendOptions {
  /// Stream key sent as a HELLO line; empty = no HELLO (the server keys
  /// the stream by connection id).
  std::string key;
  /// Replay pacing: 0 (default) pushes as fast as the socket accepts;
  /// otherwise frames are paced at `speed` times recorded real time
  /// (1.0 = realtime, 20.0 = 20x fast-forward).
  double speed = 0.0;
  /// Wire encoding. kBinary/kAuto-on-canidsBT streams records with no
  /// text round-trip: 22 bytes per frame instead of a rendered candump
  /// line, decoded server-side straight from the recv buffer.
  SendWire wire = SendWire::kText;
};

struct SendStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};

/// Connect to `addr`: a Unix-domain socket path (any string containing
/// '/') or "host:port". Returns the connected fd. Throws
/// std::runtime_error on failure.
[[nodiscard]] int connect_addr(const std::string& addr);

/// Replay `trace` (any capture format, auto-detected) to the daemon at
/// `addr`. Malformed capture lines are skipped (the point is to replay
/// frames, not to re-encode garbage). Throws std::runtime_error on
/// connect/socket failure.
SendStats send_trace(const std::string& addr,
                     const std::filesystem::path& trace,
                     const SendOptions& options = {});

}  // namespace canids::serve
