#include "serve/replay.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "trace/binary_trace.h"
#include "trace/candump.h"
#include "trace/trace_io.h"

namespace canids::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent > 0) {
      data += sent;
      size -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

int connect_tcp(const std::string& host, const std::string& port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    throw std::runtime_error("resolve " + host + ":" + port + ": " +
                             ::gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype | SOCK_CLOEXEC,
                  entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw std::runtime_error("connect " + host + ":" + port + ": " +
                             std::strerror(errno));
  }
  return fd;
}

}  // namespace

int connect_addr(const std::string& addr) {
  if (addr.find('/') != std::string::npos) return connect_unix(addr);
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == addr.size()) {
    throw std::runtime_error(
        "bad address '" + addr +
        "' (want a unix socket path containing '/' or host:port)");
  }
  return connect_tcp(addr.substr(0, colon), addr.substr(colon + 1));
}

SendStats send_trace(const std::string& addr,
                     const std::filesystem::path& trace,
                     const SendOptions& options) {
  const bool binary_wire =
      options.wire == SendWire::kBinary ||
      (options.wire == SendWire::kAuto &&
       trace::detect_format_file(trace) == trace::TraceFormat::kBinary);
  std::unique_ptr<trace::RecordSource> source =
      trace::open_trace_source(trace);
  const int fd = connect_addr(addr);
  SendStats stats;
  try {
    std::string chunk;
    chunk.reserve(64 * 1024);
    if (!options.key.empty()) {
      chunk = "HELLO " + options.key + "\n";
    }
    // Upgrade the connection before any frame bytes: everything after
    // this line is a canidsBT record stream — for a canidsBT capture
    // that's record-for-record, no text round-trip anywhere.
    if (binary_wire) chunk += "BINARY\n";

    const bool paced = options.speed > 0.0;
    const auto wall_start = std::chrono::steady_clock::now();
    util::TimeNs first_timestamp = 0;
    bool saw_first = false;

    for (;;) {
      std::optional<trace::LogRecord> record;
      try {
        record = source->next_record();
      } catch (const trace::ParseError&) {
        continue;  // skip garbage lines; replay the frames that parse
      }
      if (!record) break;
      if (!saw_first) {
        saw_first = true;
        first_timestamp = record->timestamp;
      }
      if (paced) {
        // Pace against the recording: frame k goes out once
        // (t_k - t_0) / speed of wall time has elapsed.
        const auto target =
            wall_start +
            std::chrono::nanoseconds(static_cast<std::int64_t>(
                static_cast<double>(record->timestamp - first_timestamp) /
                options.speed));
        // Flush buffered lines before sleeping so pacing is visible on the
        // wire, not hidden in our buffer.
        if (!chunk.empty()) {
          send_all(fd, chunk.data(), chunk.size());
          stats.bytes += chunk.size();
          chunk.clear();
        }
        std::this_thread::sleep_until(target);
      }
      if (binary_wire) {
        unsigned char record_bytes[trace::kBinaryRecordBytes];
        // The wire has no channel table; the server ignores the byte.
        trace::encode_binary_record(record->timestamp, record->frame,
                                    /*channel_index=*/0, record_bytes);
        chunk.append(reinterpret_cast<const char*>(record_bytes),
                     sizeof record_bytes);
      } else {
        chunk += trace::to_candump_line(*record);
        chunk.push_back('\n');
      }
      ++stats.frames;
      if (chunk.size() >= 64 * 1024) {
        send_all(fd, chunk.data(), chunk.size());
        stats.bytes += chunk.size();
        chunk.clear();
      }
    }
    if (!chunk.empty()) {
      send_all(fd, chunk.data(), chunk.size());
      stats.bytes += chunk.size();
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return stats;
}

}  // namespace canids::serve
