// Incremental newline framing for socket ingest. A TCP/UDS byte stream has
// no record boundaries: one recv() may carry half a candump line, three
// lines and a fragment, or a client's entire replay. LineFramer turns that
// into the line-at-a-time view the parsers expect, with the same
// keep-going contract the fleet's file-ingest path has for malformed
// input: an over-long line (a runaway or binary-garbage client) is
// discarded and counted, and framing recovers at the next newline instead
// of poisoning the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace canids::serve {

class LineFramer {
 public:
  /// Invoked once per completed line, without its trailing newline (a
  /// trailing '\r' is stripped too, so CRLF clients work). The view is
  /// only valid for the duration of the call.
  using LineFn = std::function<void(std::string_view)>;

  /// feed_some's callback: return false to stop framing after this line
  /// (a protocol upgrade such as the serve BINARY switch — the rest of the
  /// chunk belongs to another framer).
  using GatedLineFn = std::function<bool(std::string_view)>;

  /// Longest accepted line, in bytes (excluding the newline). A candump
  /// line tops out well under 100 bytes; the default leaves room for
  /// future framing without letting one client grow an unbounded buffer.
  static constexpr std::size_t kDefaultMaxLine = 4096;

  explicit LineFramer(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Feed one received chunk, invoking `on_line` for every line it
  /// completes. Bytes after the last newline are buffered for the next
  /// feed. Lines longer than max_line are discarded — counted in
  /// oversized() — and framing resumes after their terminating newline.
  void feed(const char* data, std::size_t size, const LineFn& on_line);

  /// Like feed, but the callback can stop framing: when `on_line` returns
  /// false, no further bytes are consumed and feed_some returns the number
  /// of bytes processed (the stopping line's newline included) — the caller
  /// owns the remainder. Returns `size` when the whole chunk was framed.
  std::size_t feed_some(const char* data, std::size_t size,
                        const GatedLineFn& on_line);

  /// Connection end-of-stream: deliver a final unterminated line, if any
  /// (candump writers always end with a newline, but a killed client may
  /// not). An oversized line still being discarded is simply dropped.
  void finish(const LineFn& on_line);

  /// Over-long lines discarded so far.
  [[nodiscard]] std::uint64_t oversized() const noexcept {
    return oversized_;
  }

  [[nodiscard]] std::size_t max_line() const noexcept { return max_line_; }

 private:
  std::size_t max_line_;
  std::string buffer_;  ///< partial line carried across feeds
  bool discarding_ = false;
  std::uint64_t oversized_ = 0;
};

}  // namespace canids::serve
