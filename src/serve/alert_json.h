// The alert wire format of the live fleet service: one JSON object per
// line (JSONL), one line per alerting window. The same renderer feeds the
// daemon's subscriber fan-out, its --alerts-out sink, and the batch
// `canids fleet --alerts-out` path — which is what makes "daemon output is
// verdict-identical to the batch run" a byte-level diff in CI.
//
// Schema (keys in this fixed order; absent detail arrays are omitted):
//   {"stream": "<key>", "start_ns": I, "end_ns": I, "frames": U,
//    "evaluated": B, "alert": B, "metric": D, "threshold": D,
//    "bits": [I...], "candidates": [U...], "voters": ["s"...]}
//
// Doubles are rendered with %.17g, so parse -> render round-trips to the
// same bytes; the parser accepts the schema in any key order (and ignores
// unknown keys) for forward compatibility.
#pragma once

#include <string>
#include <string_view>

#include "engine/alert_sink.h"
#include "util/json.h"

namespace canids::serve {

/// Render one alert as a JSON object (no trailing newline).
[[nodiscard]] std::string to_json_line(const engine::FleetAlert& alert);

/// Parse a line produced by to_json_line (or any key order / unknown-key
/// superset of the schema). Throws std::runtime_error on malformed input.
[[nodiscard]] engine::FleetAlert parse_json_line(std::string_view line);

/// Shared JSON appenders (quotes + escaping; %.17g doubles) — the same
/// primitives the telemetry event log renders with.
using util::append_json_double;
using util::append_json_string;

}  // namespace canids::serve
