#include "serve/wire_framing.h"

#include <cstring>

namespace canids::serve {

std::size_t BinaryFramer::feed(const char* data, std::size_t size,
                               std::vector<can::TimedId>& out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  std::size_t appended = 0;
  out.reserve(out.size() + size / trace::kBinaryRecordBytes + 1);
  const auto decode_one = [&](const unsigned char* record) {
    can::TimedId item;
    if (trace::decode_binary_record_id(record, item) ==
        trace::RecordFault::kNone) {
      out.push_back(item);
      ++appended;
    } else {
      ++faults_;
    }
  };

  // Complete a carried partial record first.
  if (partial_len_ > 0) {
    const std::size_t need = trace::kBinaryRecordBytes - partial_len_;
    const std::size_t take = size < need ? size : need;
    std::memcpy(partial_ + partial_len_, bytes, take);
    partial_len_ += take;
    bytes += take;
    size -= take;
    if (partial_len_ < trace::kBinaryRecordBytes) return appended;
    decode_one(partial_);
    partial_len_ = 0;
  }

  // Whole records straight out of the recv buffer — no copy.
  const std::size_t whole = size / trace::kBinaryRecordBytes;
  for (std::size_t i = 0; i < whole; ++i) {
    decode_one(bytes + i * trace::kBinaryRecordBytes);
  }

  // Buffer the trailing fragment for the next feed.
  const std::size_t rest = size - whole * trace::kBinaryRecordBytes;
  if (rest > 0) {
    std::memcpy(partial_, bytes + whole * trace::kBinaryRecordBytes, rest);
    partial_len_ = rest;
  }
  return appended;
}

void BinaryFramer::finish() {
  if (partial_len_ == 0) return;
  ++faults_;
  partial_len_ = 0;
}

}  // namespace canids::serve
