// The live fleet service: a poll()-driven socket front door for
// FleetEngine. Clients connect over TCP or a Unix-domain socket and write
// candump-format frame lines; each connection becomes one engine stream
// (keyed by its HELLO line, or a generated connection id), flowing through
// the same per-stream SPSC shard queues as batch ingest. Alerting windows
// fan out as JSON lines (serve/alert_json.h) to subscriber connections
// and/or an --alerts-out JSONL sink. A control socket (and signals, via
// the async-signal-safe post_* entry points) exposes STATUS / RELOAD /
// SHUTDOWN: status is a JSON dump of per-stream counters + queue depths,
// and reload hot-swaps the trained models of every running stream without
// disconnecting anything (FleetEngine::reload_models).
//
// Data protocol (newline-framed text, one stream per connection):
//   HELLO <key>      optional first line: name this stream
//   SUBSCRIBE        turn this connection into an alert subscriber
//   BINARY           switch this connection to the binary wire mode: every
//                    byte after the newline is a stream of canidsBT
//                    22-byte records (see serve/wire_framing.h)
//   <candump line>   e.g. "(1.234567) can0 123#DEADBEEF" — one frame
// Malformed lines (and invalid binary records) are counted against the
// stream (parse_errors) and the connection keeps going — same contract as
// file ingest. Closing the connection closes the stream; its final partial
// window is still judged. Both modes batch ingest per recv chunk: parsed
// frames accumulate in a per-connection scratch vector and land in the
// engine with one push_batch call per chunk.
//
// Control protocol (one reply line per command line; METRICS is the one
// multi-line reply, terminated by a "# EOF" line):
//   STATUS           -> the status JSON object
//   METRICS          -> Prometheus text exposition, then "# EOF"
//   RELOAD [path]    -> "ok generation=N" | "error: <why>"
//   SHUTDOWN         -> "ok" (run() returns after teardown)
//
// Observability: the server publishes service-level counters into the
// engine's telemetry::MetricsRegistry (or a private one when the engine
// has none), so STATUS, the METRICS exposition, and stats() are three
// views of the same instruments. Lifecycle events (serve start/stop,
// stream close, queue-drop and parse-error bursts, reload failures) go to
// the engine's EventLog when configured.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/fleet_engine.h"
#include "serve/line_framing.h"

namespace canids::serve {

struct ServeConfig {
  /// Unix-domain data listener path; empty = no UDS listener. An existing
  /// socket file at the path is replaced.
  std::string uds_path;
  /// TCP data listener port; -1 = no TCP listener, 0 = ephemeral (read the
  /// resolved port back with tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Control-socket path (UDS); empty = no control endpoint (signals still
  /// work).
  std::string control_path;
  /// Append alert JSONL here; empty = no file sink.
  std::string alerts_out;
  /// Model bundle (re-)read by RELOAD / SIGHUP when no explicit path is
  /// given with the command.
  std::string models_path;
  /// Longest accepted input line (see LineFramer).
  std::size_t max_line = LineFramer::kDefaultMaxLine;
};

/// Monotone service-level counters (stream-level ones live in
/// FleetEngine::status). subscriber_dropped counts alert lines a slow or
/// gone subscriber did not receive — alert fan-out is best-effort by
/// design; the JSONL file sink and the engine's own accounting are the
/// lossless records.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t streams_opened = 0;
  std::uint64_t alerts = 0;
  std::uint64_t reloads = 0;
  std::uint64_t subscriber_dropped = 0;
};

/// One server around one running engine. Construct, then run() on the
/// thread that should block serving (the engine's shard workers do the
/// detection work; run() only moves bytes). The engine must be start()ed
/// before run() and finish()ed by the caller after run() returns — alerts
/// emitted during the final drain still reach the sinks, so flush() last.
class ServeServer {
 public:
  ServeServer(engine::FleetEngine& engine, ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Serve until SHUTDOWN (control command or post_shutdown). On return
  /// every data connection has been drained through its framer and its
  /// stream close()d; listeners and sockets are torn down.
  void run();

  /// Async-signal-safe shutdown/reload/status-dump requests (each writes
  /// one byte to a self-pipe; run() acts on them). Wire these to
  /// SIGINT/SIGTERM, SIGHUP, and SIGUSR1.
  void post_shutdown() noexcept;
  void post_reload() noexcept;
  void post_status() noexcept;

  /// The TCP listener's resolved port (meaningful when config.tcp_port was
  /// 0); -1 without a TCP listener.
  [[nodiscard]] int tcp_port() const noexcept { return tcp_port_; }

  /// The status JSON object (one line): service stats + uptime + model
  /// generation + one row per stream. Thread-safe.
  [[nodiscard]] std::string status_json() const;

  /// The Prometheus exposition behind the METRICS verb: folds the
  /// engine's state into the registry (FleetEngine::publish_metrics),
  /// refreshes serve-level gauges, renders. Thread-safe.
  [[nodiscard]] std::string metrics_text();

  [[nodiscard]] ServeStats stats() const;

  /// Flush the alerts-out sink (call after engine.finish()).
  void flush_alerts();

 private:
  struct Connection;

  /// One alert subscriber: queued-but-unsent alert lines are coalesced
  /// into vectored sendmsg calls, the front line possibly mid-send.
  struct SubscriberState {
    int fd = -1;
    std::deque<std::string> pending;
    std::size_t front_offset = 0;  ///< bytes of pending.front() already sent
    std::size_t pending_bytes = 0;
  };

  void setup_listeners();
  void teardown();
  [[nodiscard]] int accept_on(int listener_fd);
  void handle_data_line(Connection& conn, std::string_view line);
  void handle_control_line(Connection& conn, std::string_view line);
  /// One recv chunk on a data connection: frame (text or binary), batch
  /// into the connection scratch, land with one push_batch.
  void handle_data_chunk(Connection& conn, const char* data,
                         std::size_t size);
  /// push_batch the connection scratch into its stream (opened on demand)
  /// and count the records under the given wire mode.
  void flush_scratch(Connection& conn, bool binary);
  /// Record binary-framer faults that appeared since the last chunk as
  /// per-stream parse errors.
  void note_wire_faults(Connection& conn);
  /// Publish/refresh the connection's wire mode for STATUS.
  void note_wire_mode(Connection& conn);
  void read_connection(Connection& conn);
  void close_connection(Connection& conn);
  void open_stream_for(Connection& conn);
  std::string do_reload(const std::string& path);
  void publish_alert(const engine::FleetAlert& alert);
  void drop_subscriber(int fd);
  /// Drain a subscriber's pending queue with vectored sendmsg; stops at
  /// EAGAIN (retried on POLLOUT). Caller holds alert_mutex_.
  void flush_subscriber(SubscriberState& sub);
  /// True when the subscriber has queued alert bytes (poll for POLLOUT).
  [[nodiscard]] bool subscriber_pending(int fd) const;
  void flush_subscriber_fd(int fd);
  /// Emit queue_drop / parse_error_burst events for counters that moved
  /// since this connection's last recv chunk (coalesces bursts).
  void note_stream_events(Connection& conn);

  engine::FleetEngine& engine_;
  ServeConfig config_;

  int uds_listener_ = -1;
  int tcp_listener_ = -1;
  int control_listener_ = -1;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 0;

  /// Guards the subscriber fd list and the alerts-out stream — written to
  /// from shard worker threads (the AlertSink handler) while run() edits
  /// the subscriber list.
  mutable std::mutex alert_mutex_;
  std::vector<SubscriberState> subscribers_;
  std::optional<std::ofstream> alerts_out_;

  /// Stream key -> wire mode ("text"/"binary") for STATUS. Separate from
  /// connections_ (run()-thread-only) because status_json is thread-safe.
  mutable std::mutex wire_mutex_;
  std::unordered_map<std::string, const char*> stream_wires_;

  /// Service-level instruments. The registry is the engine's when it has
  /// one (so METRICS exposes engine + serve families together), else a
  /// private registry holding only the serve families. The raw pointers
  /// are stable registry handles — atomic counters, no stats mutex.
  std::shared_ptr<telemetry::MetricsRegistry> registry_;
  std::shared_ptr<telemetry::EventLog> events_;
  telemetry::Counter* connections_total_ = nullptr;
  telemetry::Counter* streams_opened_total_ = nullptr;
  telemetry::Counter* alerts_total_ = nullptr;
  telemetry::Counter* reloads_total_ = nullptr;
  telemetry::Counter* subscriber_dropped_total_ = nullptr;
  telemetry::Counter* ingest_bytes_total_ = nullptr;
  telemetry::Counter* wire_records_text_ = nullptr;
  telemetry::Counter* wire_records_binary_ = nullptr;
  telemetry::Gauge* uptime_gauge_ = nullptr;
  /// Candump parse-time histogram, sampled every Nth data line when the
  /// engine's telemetry_sample knob is on; null = no timing at all.
  telemetry::Histogram* parse_hist_ = nullptr;
  std::size_t telemetry_sample_ = 0;
  std::size_t sample_tick_ = 0;

  std::int64_t started_ns_ = 0;  ///< steady-clock run() start
  std::atomic<bool> shutdown_{false};
};

}  // namespace canids::serve
