// Fleet monitor: the sharded engine watching several vehicles at once.
//
//   1. Train one golden template (shared, immutable, copy-free across
//      every stream).
//   2. Stream three clean drives and one under live injection attack —
//      each drive is simulated in bounded chunks, never materialized.
//   3. The FleetEngine routes every vehicle to a worker shard; alerts from
//      all shards funnel into one thread-safe sink.
//
// Build & run:  ./example_fleet_monitor
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "engine/fleet_engine.h"
#include "metrics/experiment.h"
#include "trace/synthetic_vehicle.h"
#include "trace/trace_source.h"

using namespace canids;

int main() {
  // --- 1. Shared golden template -------------------------------------------
  metrics::ExperimentRunner runner;
  const auto golden = runner.train_shared();
  std::printf("golden template: %zu training windows, shared by all streams\n",
              golden->training_windows);

  const trace::SyntheticVehicle& vehicle = runner.vehicle();
  constexpr util::TimeNs kDrive = 20 * util::kSecond;

  // --- 2. Four drives: three clean, one attacked ---------------------------
  std::vector<engine::NamedSource> sources;
  sources.push_back(engine::NamedSource{
      "car-idle", vehicle.stream_trace(trace::DrivingBehavior::kIdle, kDrive, 11),
      vehicle.id_pool()});
  sources.push_back(engine::NamedSource{
      "car-city", vehicle.stream_trace(trace::DrivingBehavior::kCity, kDrive, 12),
      vehicle.id_pool()});
  sources.push_back(engine::NamedSource{
      "car-highway",
      vehicle.stream_trace(trace::DrivingBehavior::kHighway, kDrive, 13),
      vehicle.id_pool()});

  // The compromised car: its bus carries a 100 Hz single-ID injection from
  // t=5s to t=15s. The bus is driven chunk-by-chunk by the stream source.
  can::BusSimulator attacked_bus(vehicle.config().bus);
  vehicle.attach_to(attacked_bus, trace::DrivingBehavior::kCity, 14);
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = 100.0;
  attack_config.start = 5 * util::kSecond;
  attack_config.stop = 15 * util::kSecond;
  auto attack = attacks::make_scenario(attacks::ScenarioKind::kSingle, vehicle,
                                       attack_config, util::Rng(7));
  std::printf("car-compromised: injecting ID %03X at %.0f Hz, t=5s..15s\n",
              attack.planned_ids.front(), attack_config.frequency_hz);
  attacks::attach_attack(attacked_bus, attack);
  sources.push_back(engine::NamedSource{
      "car-compromised",
      std::make_unique<trace::BusStreamSource>(attacked_bus, kDrive),
      vehicle.id_pool()});

  // --- 3. Run the fleet ----------------------------------------------------
  engine::FleetConfig config;
  config.shards = 4;
  engine::FleetEngine fleet(golden, config);
  fleet.alerts().set_handler([](const engine::FleetAlert& alert) {
    std::printf("[%s @ %4.1fs] ALERT", alert.stream.c_str(),
                util::to_seconds(alert.verdict.start));
    if (alert.verdict.detail) {
      std::printf(" bits:");
      for (int bit : alert.verdict.detail->alerted_bits) {
        std::printf(" %d", bit + 1);
      }
      if (!alert.verdict.detail->ranked_candidates.empty()) {
        std::printf("  suspect IDs:");
        const auto& candidates = alert.verdict.detail->ranked_candidates;
        for (std::size_t i = 0; i < candidates.size() && i < 5; ++i) {
          std::printf(" %03X", candidates[i]);
        }
      }
    }
    std::printf("\n");
  });

  engine::FleetRunResult run = engine::run_fleet(fleet, std::move(sources));

  std::printf("\nper-vehicle summary:\n");
  for (const engine::StreamResult& stream : run.streams) {
    std::printf("  %-16s shard %d  %6llu frames  %3llu windows  %llu alerts\n",
                stream.key.c_str(), stream.shard,
                static_cast<unsigned long long>(stream.counters.frames),
                static_cast<unsigned long long>(
                    stream.counters.windows_closed),
                static_cast<unsigned long long>(stream.counters.alerts));
  }
  std::printf("fleet total: %llu frames, %llu alerts across %d shards\n",
              static_cast<unsigned long long>(fleet.totals().frames),
              static_cast<unsigned long long>(fleet.totals().alerts),
              fleet.shards());

  // Exit 0 when the compromised car (and only it) tripped the IDS.
  bool compromised_alerted = false;
  bool clean_alerted = false;
  for (const engine::StreamResult& stream : run.streams) {
    if (stream.key == "car-compromised") {
      compromised_alerted = stream.counters.alerts > 0;
    } else if (stream.counters.alerts > 0) {
      clean_alerted = true;
    }
  }
  return compromised_alerted && !clean_alerted ? 0 : 1;
}
