// Example: programmatic evaluation campaigns.
//
// Builds a small CampaignSpec in code — two detectors over two scenarios
// and a rate sweep — runs it on the worker pool, and shows the three ways
// to consume the result: the aggregated cells (ROC/AUC + latency), the
// per-trial rows, and the machine-readable artifacts on disk.
//
//   ./example_campaign_sweep [report-dir]
#include <cstdio>
#include <iostream>

#include "campaign/report.h"
#include "campaign/runner.h"
#include "util/table.h"

using namespace canids;

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  spec.name = "example-sweep";
  spec.detectors = {"bit-entropy", "interval"};
  spec.scenarios = {attacks::ScenarioKind::kSingle,
                    attacks::ScenarioKind::kMulti3};
  spec.rates_hz = {100.0, 50.0, 10.0};
  spec.seeds = 2;
  spec.experiment.training_windows = 15;  // keep the example quick
  spec.experiment.clean_lead_in = 2 * util::kSecond;
  spec.experiment.attack_duration = 8 * util::kSecond;

  std::printf("spec (JSON form, also accepted by `canids campaign`):\n%s\n",
              spec.to_json().c_str());

  campaign::CampaignRunner runner(spec);
  const campaign::CampaignReport report = runner.run();

  // 1. Aggregated cells: one row per detector x scenario x rate.
  util::Table cells({"detector", "scenario", "rate Hz", "Dr", "TPR", "FPR",
                     "AUC", "latency s"});
  for (const campaign::CampaignCell& cell : report.cells) {
    cells.add_row({cell.detector,
                   std::string(campaign::scenario_token(cell.kind)),
                   util::Table::num(cell.frequency_hz, 0),
                   util::Table::percent(cell.detection_rate),
                   util::Table::percent(cell.tpr),
                   util::Table::percent(cell.fpr),
                   util::Table::num(cell.auc, 3),
                   cell.mean_latency_seconds
                       ? util::Table::num(*cell.mean_latency_seconds, 2)
                       : std::string("--")});
  }
  cells.print(std::cout);

  // 2. Individual trials, e.g. to study seed variance.
  std::size_t detected = 0;
  for (const metrics::InstrumentedTrial& trial : report.trials) {
    if (trial.detection_latency()) ++detected;
  }
  std::printf("%zu/%zu trials detected their attack; %d workers, %.2fs\n",
              detected, report.trials.size(), runner.stats().workers,
              runner.stats().wall_seconds);

  // 3. Machine-readable artifacts for notebooks and dashboards.
  if (argc > 1) {
    report.write_all(argv[1]);
    std::printf("report -> %s/{trials.csv, cells.csv, roc.csv, report.json}\n",
                argv[1]);
  }
  return 0;
}
