// Attack lab: interactively explore the attacker's trade-off space the
// paper analyses — injected-ID priority vs injection rate vs detectability
// (Fig. 3 and the N_m = Ir * f * T0 relation) — on a small grid.
#include <cstdio>
#include <iostream>

#include "metrics/experiment.h"
#include "util/table.h"

using namespace canids;

int main() {
  metrics::ExperimentConfig config;
  config.training_windows = 14;
  config.attack_duration = 12 * util::kSecond;
  metrics::ExperimentRunner runner(config);
  (void)runner.train();

  const auto& pool = runner.vehicle().id_pool();

  // Pick three priority levels: dominant, median, weak.
  const std::uint32_t ids[] = {pool.front(), pool[pool.size() / 2],
                               pool.back()};
  const double frequencies[] = {100.0, 20.0};

  util::Table table({"injected ID", "f (Hz)", "I_r (arb)", "I_r (success)",
                     "injected frames", "detection rate"});
  std::uint64_t seed = 0;
  for (std::uint32_t id : ids) {
    for (double f : frequencies) {
      const metrics::TrialResult trial =
          runner.run_single_id_trial(id, f, seed++);
      table.add_row({can::CanId::standard(id).to_string(),
                     util::Table::num(f, 0),
                     util::Table::num(trial.injection_rate_arbitration, 3),
                     util::Table::num(trial.injection_rate_success, 3),
                     std::to_string(trial.injected_transmitted),
                     util::Table::percent(trial.detection_rate)});
    }
  }

  std::printf("attacker trade-off lab (alpha=5, rank=10, 1 s windows)\n\n");
  table.print(std::cout);
  std::printf(
      "\nreading: dominant IDs (top rows) win arbitration more often and\n"
      "inject more frames — and precisely because of that they shift the\n"
      "bit entropy harder and are detected more reliably. The attacker\n"
      "cannot be both effective and quiet (the paper's core argument).\n");
  return 0;
}
