// Quickstart: the smallest end-to-end use of the canids public API.
//
//   1. Model a vehicle (or capture real traffic with candump/Vehicle Spy).
//   2. Train the golden template on clean driving windows.
//   3. Attach the IDS pipeline and stream frames through it.
//   4. React to alerts: which bits moved, which IDs are suspect.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "metrics/experiment.h"

using namespace canids;

int main() {
  // --- 1. A synthetic 2016-Ford-Fusion-like vehicle -------------------------
  trace::SyntheticVehicle vehicle;
  std::printf("vehicle: %zu ECUs, %zu active IDs (%.2f%% of ID space)\n",
              vehicle.ecus().size(), vehicle.id_pool().size(),
              vehicle.id_space_usage() * 100.0);

  // --- 2. Train the golden template (paper: 35 windows, 1 s each) ----------
  metrics::ExperimentConfig config;
  config.training_windows = ids::kPaperTrainingWindows;
  metrics::ExperimentRunner runner(config);
  const ids::GoldenTemplate& golden = runner.train();
  std::printf("golden template trained on %zu windows\n",
              golden.training_windows);

  // --- 3. Simulate a drive with a live injection attack ---------------------
  can::BusSimulator bus(vehicle.config().bus);
  vehicle.attach_to(bus, trace::DrivingBehavior::kCity, /*run_seed=*/2024);

  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = 100.0;
  attack_config.start = 5 * util::kSecond;
  attack_config.stop = 12 * util::kSecond;
  auto attack = attacks::make_scenario(attacks::ScenarioKind::kSingle,
                                       vehicle, attack_config,
                                       util::Rng(7));
  std::printf("attacker will inject ID %03X at %.0f Hz from t=5s to t=12s\n",
              attack.planned_ids.front(), attack_config.frequency_hz);
  attacks::attach_attack(bus, attack);

  // --- 4. Attach the IDS and stream the bus through it ----------------------
  ids::PipelineConfig pipeline_config;  // 1 s windows, alpha = 5, rank = 10
  ids::IdsPipeline pipeline(golden, vehicle.id_pool(), pipeline_config);

  pipeline.set_alert_handler([](const ids::WindowReport& report) {
    std::printf("[%5.1fs] ALERT  bits:", util::to_seconds(
                                             report.snapshot.start));
    for (int bit : report.detection.alerted_bits) {
      std::printf(" %d", bit + 1);  // paper-style 1-based bit positions
    }
    if (report.inference) {
      std::printf("  suspect IDs:");
      for (std::size_t i = 0;
           i < report.inference->ranked_candidates.size() && i < 5; ++i) {
        std::printf(" %03X", report.inference->ranked_candidates[i]);
      }
      std::printf("  (injected fraction ~%.1f%%)",
                  report.inference->estimated_injection_fraction * 100.0);
    }
    std::printf("\n");
  });

  bus.add_listener([&pipeline](const can::TimedFrame& frame) {
    pipeline.on_frame(frame.timestamp, frame.frame.id());
  });

  bus.run_until(15 * util::kSecond);
  pipeline.finish();

  std::printf(
      "done: %llu frames, %llu windows, %llu alerts, bus load %.0f%%\n",
      static_cast<unsigned long long>(pipeline.counters().frames),
      static_cast<unsigned long long>(pipeline.counters().windows_closed),
      static_cast<unsigned long long>(pipeline.counters().alerts),
      bus.stats().load() * 100.0);
  return pipeline.counters().alerts > 0 ? 0 : 1;
}
