// Live bus monitor: a timeline view of the IDS guarding a running bus while
// the traffic changes behaviour and several attacks come and go. Shows how
// the detector reacts within one window (~1 s) and how the transceiver
// guard independently kills a raw bus-hold DoS.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "trace/synthetic_vehicle.h"
#include "metrics/experiment.h"

using namespace canids;

namespace {

struct TimelineEvent {
  util::TimeNs at;
  std::string label;
};

}  // namespace

int main() {
  trace::SyntheticVehicle vehicle;

  // Train quickly (7 behaviours x 2 windows); production setups would use
  // the paper's full 35.
  metrics::ExperimentConfig config;
  config.training_windows = 14;
  metrics::ExperimentRunner runner(config);
  const ids::GoldenTemplate& golden = runner.train();

  can::BusSimulator bus(vehicle.config().bus);
  vehicle.attach_to(bus, trace::DrivingBehavior::kCity, 99);

  // --- Schedule three attack phases -----------------------------------------
  std::vector<TimelineEvent> timeline;

  attacks::AttackConfig single_config;
  single_config.frequency_hz = 100.0;
  single_config.start = 4 * util::kSecond;
  single_config.stop = 8 * util::kSecond;
  auto single = attacks::make_scenario(attacks::ScenarioKind::kSingle,
                                       vehicle, single_config, util::Rng(1));
  timeline.push_back({single_config.start,
                      "single-ID injection begins (ID " +
                          can::CanId::standard(single.planned_ids[0])
                              .to_string() + ", 100 Hz)"});
  timeline.push_back({single_config.stop, "single-ID injection ends"});
  bus.add_node(std::move(single.node));

  attacks::AttackConfig flood_config;
  flood_config.frequency_hz = 400.0;
  flood_config.start = 12 * util::kSecond;
  flood_config.stop = 15 * util::kSecond;
  auto flood = attacks::make_flooding_attack(flood_config, util::Rng(2));
  timeline.push_back({flood_config.start,
                      "flooding with changeable high-priority IDs (400 Hz)"});
  timeline.push_back({flood_config.stop, "flooding ends"});
  const int flooder_index = bus.add_node(std::move(flood.node));

  // --- IDS attachment ---------------------------------------------------------
  ids::IdsPipeline pipeline(golden, vehicle.id_pool(), {});
  std::size_t alert_count = 0;
  pipeline.set_alert_handler([&](const ids::WindowReport& report) {
    ++alert_count;
    std::printf("%6.1fs  *** ALERT: entropy deviation on bits",
                util::to_seconds(report.snapshot.start));
    for (int bit : report.detection.alerted_bits) std::printf(" %d", bit + 1);
    if (report.inference && !report.inference->ranked_candidates.empty()) {
      std::printf(" | top suspects:");
      for (std::size_t i = 0;
           i < report.inference->ranked_candidates.size() && i < 3; ++i) {
        std::printf(" %03X", report.inference->ranked_candidates[i]);
      }
    }
    std::printf("\n");
  });
  bus.add_listener([&](const can::TimedFrame& frame) {
    pipeline.on_frame(frame.timestamp, frame.frame.id());
  });

  // --- Run the timeline --------------------------------------------------------
  std::printf("=== live bus monitor (125 kbit/s mid-speed CAN) ===\n");
  std::size_t next_event = 0;
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.at < b.at;
            });
  for (util::TimeNs t = util::kSecond; t <= 18 * util::kSecond;
       t += util::kSecond) {
    while (next_event < timeline.size() && timeline[next_event].at < t) {
      std::printf("%6.1fs  >>> %s\n",
                  util::to_seconds(timeline[next_event].at),
                  timeline[next_event].label.c_str());
      ++next_event;
    }
    bus.run_until(t);
  }

  // --- Raw bus-hold DoS: killed by the transceiver, not the IDS ---------------
  std::printf("%6.1fs  >>> attacker holds the bus dominant (zero-flood DoS)\n",
              util::to_seconds(bus.now()));
  const util::TimeNs held =
      bus.hold_bus_dominant(flooder_index, 10 * util::kMillisecond);
  std::printf("%6.1fs  transceiver cut the hold after %.2f ms; node %s\n",
              util::to_seconds(bus.now()),
              static_cast<double>(held) / util::kMillisecond,
              bus.node(flooder_index).disabled() ? "disabled" : "still up");

  std::printf("=== summary: %llu frames, %zu alerts, bus load %.0f%% ===\n",
              static_cast<unsigned long long>(pipeline.counters().frames),
              alert_count, bus.stats().load() * 100.0);
  return 0;
}
