// Live bus monitor, service edition: the same timeline of attacks as
// before, but instead of wiring an IdsPipeline straight to the bus, the
// monitor drives the full live-serving stack in-process — a FleetEngine
// behind a ServeServer on a Unix-domain socket. Bus frames go out over a
// data connection as candump lines (exactly what `canids send` would
// write), alerts come back over a SUBSCRIBE connection as JSON lines, and
// halfway through the run the control socket hot-reloads the model bundle
// without the stream noticing. What `canids serve` does in production,
// observable end to end in one process.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "attacks/scenario.h"
#include "engine/fleet_engine.h"
#include "metrics/experiment.h"
#include "model/store.h"
#include "serve/alert_json.h"
#include "serve/line_framing.h"
#include "serve/replay.h"
#include "serve/server.h"
#include "trace/candump.h"
#include "trace/synthetic_vehicle.h"

using namespace canids;

namespace {

struct TimelineEvent {
  util::TimeNs at;
  std::string label;
};

void send_all(int fd, const std::string& data) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t sent = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (sent > 0) {
      cursor += sent;
      remaining -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    std::perror("send");
    return;
  }
}

/// One control-protocol exchange (RELOAD, STATUS, SHUTDOWN): connect, one
/// command line out, one reply line back.
std::string control_command(const std::string& control_path,
                            const std::string& command) {
  const int fd = serve::connect_addr(control_path);
  send_all(fd, command + "\n");
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got > 0) {
      reply.append(buf, static_cast<std::size_t>(got));
      const std::size_t newline = reply.find('\n');
      if (newline != std::string::npos) {
        reply.resize(newline);
        break;
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  return reply;
}

}  // namespace

int main() {
  trace::SyntheticVehicle vehicle;

  // Train quickly (7 behaviours x 2 windows); production setups would use
  // the paper's full 35.
  metrics::ExperimentConfig experiment_config;
  experiment_config.training_windows = 14;
  metrics::ExperimentRunner runner(experiment_config);
  const model::StoredModels models{runner.train_shared(), nullptr, nullptr};

  // The serving stack wants its model as an on-disk bundle — that is what
  // RELOAD re-reads for the hot swap.
  const std::string tag = "canids-monitor-" + std::to_string(::getpid());
  const std::filesystem::path tmp = std::filesystem::temp_directory_path();
  const std::string bundle_path = (tmp / (tag + ".bundle")).string();
  model::save_models_file(bundle_path, models);

  // --- The serving stack: engine + socket server, all in this process ------
  engine::FleetConfig fleet_config;
  fleet_config.shards = 1;
  analysis::DetectorOptions detector_options;
  detector_options.id_pool = vehicle.id_pool();  // enables suspect inference
  engine::FleetEngine engine(models, "bit-entropy", detector_options,
                             fleet_config);

  serve::ServeConfig serve_config;
  serve_config.uds_path = (tmp / (tag + ".sock")).string();
  serve_config.control_path = (tmp / (tag + ".ctl")).string();
  serve_config.models_path = bundle_path;
  serve::ServeServer server(engine, serve_config);

  engine.start();
  std::thread server_thread([&server] { server.run(); });

  // --- Alert subscriber: a second connection, reading JSON lines -----------
  const int subscriber_fd = serve::connect_addr(serve_config.uds_path);
  send_all(subscriber_fd, "SUBSCRIBE\n");
  std::atomic<std::size_t> alert_count{0};
  std::thread alert_thread([subscriber_fd, &alert_count] {
    serve::LineFramer framer;
    char buf[4096];
    for (;;) {
      const ssize_t got = ::recv(subscriber_fd, buf, sizeof buf, 0);
      if (got == 0) break;  // server teardown closes subscribers
      if (got < 0) {
        if (errno == EINTR) continue;
        break;
      }
      framer.feed(buf, static_cast<std::size_t>(got),
                  [&alert_count](std::string_view line) {
                    const engine::FleetAlert alert =
                        serve::parse_json_line(line);
                    ++alert_count;
                    std::printf(
                        "%6.1fs  *** ALERT on %s: entropy deviation on bits",
                        util::to_seconds(alert.verdict.start),
                        alert.stream.c_str());
                    if (alert.verdict.detail) {
                      for (const int bit : alert.verdict.detail->alerted_bits) {
                        std::printf(" %d", bit + 1);
                      }
                      std::printf(" | top suspects:");
                      std::size_t shown = 0;
                      for (const std::uint32_t id :
                           alert.verdict.detail->ranked_candidates) {
                        if (++shown > 3) break;
                        std::printf(" %03X", id);
                      }
                    }
                    std::printf("\n");
                  });
    }
  });

  // --- Data connection: the bus streams itself as candump lines ------------
  const int data_fd = serve::connect_addr(serve_config.uds_path);
  send_all(data_fd, "HELLO bus\n");

  can::BusSimulator bus(vehicle.config().bus);
  vehicle.attach_to(bus, trace::DrivingBehavior::kCity, 99);

  std::string chunk;
  bus.add_listener([&chunk](const can::TimedFrame& frame) {
    chunk += trace::to_candump_line(
        trace::LogRecord{frame.timestamp, "can0", frame.frame});
    chunk.push_back('\n');
  });

  // --- Schedule the attack phases (same timeline as ever) ------------------
  std::vector<TimelineEvent> timeline;

  attacks::AttackConfig single_config;
  single_config.frequency_hz = 100.0;
  single_config.start = 4 * util::kSecond;
  single_config.stop = 8 * util::kSecond;
  auto single = attacks::make_scenario(attacks::ScenarioKind::kSingle,
                                       vehicle, single_config, util::Rng(1));
  timeline.push_back({single_config.start,
                      "single-ID injection begins (ID " +
                          can::CanId::standard(single.planned_ids[0])
                              .to_string() + ", 100 Hz)"});
  timeline.push_back({single_config.stop, "single-ID injection ends"});
  attacks::attach_attack(bus, single);

  attacks::AttackConfig flood_config;
  flood_config.frequency_hz = 400.0;
  flood_config.start = 12 * util::kSecond;
  flood_config.stop = 15 * util::kSecond;
  auto flood = attacks::make_flooding_attack(flood_config, util::Rng(2));
  timeline.push_back({flood_config.start,
                      "flooding with changeable high-priority IDs (400 Hz)"});
  timeline.push_back({flood_config.stop, "flooding ends"});
  attacks::attach_attack(bus, flood);

  // --- Run the timeline, one simulated second per socket write -------------
  std::printf("=== live bus monitor (engine behind unix:%s) ===\n",
              serve_config.uds_path.c_str());
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.at < b.at;
            });
  std::size_t next_event = 0;
  for (util::TimeNs t = util::kSecond; t <= 18 * util::kSecond;
       t += util::kSecond) {
    while (next_event < timeline.size() && timeline[next_event].at < t) {
      std::printf("%6.1fs  >>> %s\n",
                  util::to_seconds(timeline[next_event].at),
                  timeline[next_event].label.c_str());
      ++next_event;
    }
    bus.run_until(t);
    send_all(data_fd, chunk);
    chunk.clear();

    if (t == 9 * util::kSecond) {
      // Between the two attacks: hot-reload the bundle through the control
      // socket. The stream stays connected; its open window keeps counting.
      const std::string reply =
          control_command(serve_config.control_path, "RELOAD");
      std::printf("%6.1fs  >>> control RELOAD -> %s (stream undisturbed)\n",
                  util::to_seconds(t), reply.c_str());
    }
  }

  // Closing the data connection closes the stream; the final partial
  // window is still judged during the engine drain.
  ::close(data_fd);

  // Let the shard worker drain the stream before teardown so every alert
  // reaches the subscriber (after SHUTDOWN the server closes subscriber
  // connections; late alerts would only reach an --alerts-out file).
  for (int i = 0; i < 15000; ++i) {  // generous: sanitized builds are slow
    const std::vector<engine::StreamStatus> status = engine.status();
    if (!status.empty() && status.front().drained) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  control_command(serve_config.control_path, "SHUTDOWN");
  server_thread.join();
  engine.finish();
  alert_thread.join();
  ::close(subscriber_fd);

  const ids::PipelineCounters& totals = engine.totals();
  const serve::ServeStats stats = server.stats();
  std::printf(
      "=== summary: %llu frames over the socket, %zu alerts received by the "
      "subscriber, %llu reloads, bus load %.0f%% ===\n",
      static_cast<unsigned long long>(totals.frames), alert_count.load(),
      static_cast<unsigned long long>(stats.reloads),
      bus.stats().load() * 100.0);

  std::error_code ignored;
  std::filesystem::remove(bundle_path, ignored);
  return 0;
}
