// Offline log analysis: the analyst workflow on captured CAN logs.
//
// Usage:
//   ./offline_log_analysis                 # self-contained demo (generates
//                                          # train.log / drive.log first)
//   ./offline_log_analysis train.log drive.log
//
// train.log must be attack-free; drive.log is the capture to analyse. Both
// candump and Vehicle-Spy-style CSV are auto-detected.
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "attacks/scenario.h"
#include "ids/pipeline.h"
#include "trace/trace_io.h"

using namespace canids;

namespace {

/// Generate demo logs so the example runs without real captures.
void generate_demo_logs(const std::filesystem::path& train_path,
                        const std::filesystem::path& drive_path) {
  const trace::SyntheticVehicle vehicle;

  trace::Trace training;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const trace::Trace part = vehicle.record_trace(
        trace::kAllBehaviors[seed % trace::kAllBehaviors.size()],
        8 * util::kSecond, 500 + seed);
    // Re-base timestamps so the concatenated log stays monotone.
    const util::TimeNs base =
        static_cast<util::TimeNs>(seed) * 9 * util::kSecond;
    for (trace::LogRecord record : part) {
      record.timestamp += base;
      training.push_back(std::move(record));
    }
  }
  trace::save_trace_file(train_path, training, trace::TraceFormat::kCandump);

  can::BusSimulator bus(vehicle.config().bus);
  vehicle.attach_to(bus, trace::DrivingBehavior::kHighway, 77);
  attacks::AttackConfig attack_config;
  attack_config.frequency_hz = 80.0;
  attack_config.start = 6 * util::kSecond;
  attack_config.stop = 14 * util::kSecond;
  auto attack = attacks::make_scenario(attacks::ScenarioKind::kMulti2,
                                       vehicle, attack_config, util::Rng(3));
  std::printf("demo drive contains a 2-ID injection (IDs");
  for (std::uint32_t id : attack.planned_ids) std::printf(" %03X", id);
  std::printf(") between t=6s and t=14s\n");
  attacks::attach_attack(bus, attack);
  trace::TraceRecorder recorder(bus, "can0");
  bus.run_until(18 * util::kSecond);
  trace::save_trace_file(drive_path, recorder.trace(),
                         trace::TraceFormat::kCandump);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path train_path;
  std::filesystem::path drive_path;
  if (argc == 3) {
    train_path = argv[1];
    drive_path = argv[2];
  } else {
    train_path = std::filesystem::temp_directory_path() / "canids_train.log";
    drive_path = std::filesystem::temp_directory_path() / "canids_drive.log";
    std::printf("no logs given; generating demo captures...\n");
    generate_demo_logs(train_path, drive_path);
  }

  // --- Load ------------------------------------------------------------------
  const trace::Trace training = trace::load_trace_file(train_path);
  const trace::Trace drive = trace::load_trace_file(drive_path);
  const trace::TraceSummary train_summary = trace::summarize(training);
  const trace::TraceSummary drive_summary = trace::summarize(drive);
  std::printf("train: %zu frames, %zu IDs, %.1f s\n", train_summary.frames,
              train_summary.distinct_ids,
              util::to_seconds(train_summary.duration));
  std::printf("drive: %zu frames, %zu IDs, %.1f s\n", drive_summary.frames,
              drive_summary.distinct_ids,
              util::to_seconds(drive_summary.duration));

  // --- Train -----------------------------------------------------------------
  ids::WindowConfig window;  // 1 s windows
  ids::TemplateBuilder builder;
  {
    ids::WindowAccumulator accumulator(window);
    for (const trace::LogRecord& record : training) {
      if (auto snap = accumulator.add(record.timestamp, record.frame.id())) {
        if (snap->end - snap->start == window.duration) {
          builder.add_window(*snap);
        }
      }
    }
  }
  const ids::GoldenTemplate golden = builder.build();
  std::printf("template: %zu training windows\n", golden.training_windows);

  // --- Analyse ----------------------------------------------------------------
  // The ID pool for inference is everything seen in training.
  std::vector<std::uint32_t> pool;
  {
    std::set<std::uint32_t> ids_seen;
    for (const trace::LogRecord& record : training) {
      if (!record.frame.id().is_extended()) {
        ids_seen.insert(record.frame.id().raw());
      }
    }
    pool.assign(ids_seen.begin(), ids_seen.end());
  }

  ids::PipelineConfig pipeline_config;
  pipeline_config.window = window;
  ids::IdsPipeline pipeline(golden, pool, pipeline_config);

  std::size_t alert_windows = 0;
  auto report_alert = [&](const ids::WindowReport& report) {
    if (!report.detection.alert) return;
    ++alert_windows;
    std::printf("[%6.1fs] intrusion: bits", util::to_seconds(
                                                report.snapshot.start));
    for (int bit : report.detection.alerted_bits) std::printf(" %d", bit + 1);
    if (report.inference && !report.inference->ranked_candidates.empty()) {
      std::printf("  candidates:");
      for (std::size_t i = 0;
           i < report.inference->ranked_candidates.size() && i < 10; ++i) {
        std::printf(" %03X", report.inference->ranked_candidates[i]);
      }
    }
    std::printf("\n");
  };

  for (const trace::LogRecord& record : drive) {
    if (auto report = pipeline.on_frame(record.timestamp, record.frame.id())) {
      report_alert(*report);
    }
  }
  if (auto report = pipeline.finish()) report_alert(*report);

  std::printf("%zu of %llu windows alerted\n", alert_windows,
              static_cast<unsigned long long>(
                  pipeline.counters().windows_closed));
  return 0;
}
